package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"handshakejoin"
	"handshakejoin/internal/workload"
)

// probeExperiment measures the selectivity-adaptive probe engine: the
// same workload joined under each static access path (ScanIndex,
// HashIndex, BTreeIndex) and under IndexAuto, across key mixes chosen
// so that no single static path wins everywhere — a selective equi
// mix (hash territory), a band join (B-tree territory, hash is
// inadmissible), a mixed equi join with a residual (hash, but with
// fatter chains), and a hard-skewed mix whose hot key-group's matches
// dominate its window fragment (scan territory for the hot group,
// hash for the cold ones — only a per-group decision gets both).
// Tracked across PRs via BENCH_probe.json; the enforced checks pin
// the tentpole claims (band-heavy auto >= 2x scan, auto within 10% of
// the best static everywhere).
type probeRow struct {
	Mix          string  `json:"mix"`
	Index        string  `json:"index"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// AllocsPerTuple is heap allocations per pushed tuple over the whole
	// run (runtime.MemStats deltas, engine close included): the adaptive
	// dispatcher must not re-introduce per-probe closure churn.
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
	Results        uint64  `json:"results"`
	// ProbeScan/Hash/BTree are the engine's strategy-mix counters: which
	// access path the row's probes actually took (their sum is the probe
	// dispatch count — conserved by construction).
	ProbeScan        uint64  `json:"probe_scan"`
	ProbeHash        uint64  `json:"probe_hash"`
	ProbeBTree       uint64  `json:"probe_btree"`
	StrategySwitches uint64  `json:"strategy_switches"`
	SpeedupVsScan    float64 `json:"speedup_vs_scan"`
}

type probeReport struct {
	Experiment string     `json:"experiment"`
	Workers    int        `json:"workers"`
	LaneBatch  int        `json:"lane_batch"`
	Note       string     `json:"note"`
	Rows       []probeRow `json:"rows"`
}

// pbR / pbS carry a join key and a residual value.
type pbR struct {
	Key uint64
	Val int32
}
type pbS struct {
	Key uint64
	Val int32
}

// probeMix is one workload shape: a key/value generator pair, the
// predicate, its declared class, and the admissible static rows.
type probeMix struct {
	name    string
	tuples  int // per stream, non-quick
	window  int
	band    uint64
	class   handshakejoin.PredicateClass
	pred    func(pbR, pbS) bool
	gen     func(rnd *workload.Rand, i int) (uint64, int32)
	statics []handshakejoin.IndexKind
}

func probeMixes() []probeMix {
	const bandW = 32
	return []probeMix{
		{
			// Selective equi join: 4096 uniform keys over a 4096-tuple
			// window — one-entry chains, the paper's §7.6 hash-index case.
			name: "equi_heavy", tuples: 30000, window: 4096,
			class: handshakejoin.PredEqui,
			pred:  func(r pbR, s pbS) bool { return r.Key == s.Key },
			gen: func(rnd *workload.Rand, _ int) (uint64, int32) {
				return uint64(rnd.Intn(4096)), 0
			},
			statics: []handshakejoin.IndexKind{handshakejoin.ScanIndex, handshakejoin.HashIndex, handshakejoin.BTreeIndex},
		},
		{
			// Band join over a wide key domain: |kR − kS| <= 32. Hash is
			// inadmissible (equality never holds to narrow on), so the
			// contest is scan vs ordered range probe.
			name: "band_heavy", tuples: 24000, window: 4096, band: bandW,
			class: handshakejoin.PredBand,
			pred: func(r pbR, s pbS) bool {
				d := int64(r.Key) - int64(s.Key)
				if d < 0 {
					d = -d
				}
				return d <= bandW
			},
			gen: func(rnd *workload.Rand, _ int) (uint64, int32) {
				return uint64(rnd.Intn(1 << 20)), 0
			},
			statics: []handshakejoin.IndexKind{handshakejoin.ScanIndex, handshakejoin.BTreeIndex},
		},
		{
			// Equi join with a residual: 512 keys over 2048 tuples (fatter
			// chains) and a value-band residual that passes ~1 in 4.
			name: "mixed", tuples: 48000, window: 2048,
			class: handshakejoin.PredEqui,
			pred: func(r pbR, s pbS) bool {
				if r.Key != s.Key {
					return false
				}
				d := r.Val - s.Val
				if d < 0 {
					d = -d
				}
				return d <= 8
			},
			gen: func(rnd *workload.Rand, _ int) (uint64, int32) {
				return uint64(rnd.Intn(512)), int32(rnd.Intn(64))
			},
			statics: []handshakejoin.IndexKind{handshakejoin.ScanIndex, handshakejoin.HashIndex, handshakejoin.BTreeIndex},
		},
		{
			// Hard skew: 90% of tuples share one hot key, the rest spread
			// over 64. The hot group's chain is most of its window
			// fragment (scan territory); cold groups want the hash. A
			// global static choice loses one side or the other. The window
			// stays well above batch x MaxInFlight (the operator's
			// in-flight contract) so the multiset is schedule-independent.
			name: "skewed_card", tuples: 16000, window: 1024,
			class: handshakejoin.PredEqui,
			pred:  func(r pbR, s pbS) bool { return r.Key == s.Key },
			gen: func(rnd *workload.Rand, _ int) (uint64, int32) {
				if rnd.Intn(32) != 0 {
					return 7, 0 // the hot key: ~97% of both streams
				}
				return 100 + uint64(rnd.Intn(64)), 0
			},
			statics: []handshakejoin.IndexKind{handshakejoin.ScanIndex, handshakejoin.HashIndex, handshakejoin.BTreeIndex},
		},
	}
}

func probeIndexName(k handshakejoin.IndexKind) string {
	switch k {
	case handshakejoin.ScanIndex:
		return "scan"
	case handshakejoin.HashIndex:
		return "hash"
	case handshakejoin.BTreeIndex:
		return "btree"
	case handshakejoin.IndexAuto:
		return "auto"
	default:
		return fmt.Sprintf("index(%d)", k)
	}
}

func runProbeRow(m probeMix, index handshakejoin.IndexKind, tuples int) (probeRow, error) {
	cfg := handshakejoin.Config[pbR, pbS]{
		Workers:     2,
		Predicate:   m.pred,
		WindowR:     handshakejoin.Window{Count: m.window},
		WindowS:     handshakejoin.Window{Count: m.window},
		Batch:       64,
		MaxInFlight: 4, // batch x in-flight stays ~4x under the smallest window
		Index:       index,
		Band:        m.band,
		KeyR:        func(r pbR) uint64 { return r.Key },
		KeyS:        func(s pbS) uint64 { return s.Key },
		// Deterministic batch boundaries: every row must produce the
		// identical result multiset, and the wall-clock heartbeat would
		// flush partial batches at timing-dependent points.
		Adapt:    handshakejoin.AdaptConfig{DisableHeartbeat: true},
		Obs:      obsCfg(),
		OnOutput: func(handshakejoin.Item[pbR, pbS]) {},
	}
	if index == handshakejoin.IndexAuto {
		cfg.Class = m.class
	}
	eng, err := handshakejoin.New(cfg)
	if err != nil {
		return probeRow{}, err
	}
	rnd := workload.NewRand(17)
	rK := make([]uint64, tuples)
	rV := make([]int32, tuples)
	sK := make([]uint64, tuples)
	sV := make([]int32, tuples)
	for i := 0; i < tuples; i++ {
		rK[i], rV[i] = m.gen(rnd, i)
		sK[i], sV[i] = m.gen(rnd, i)
	}
	const period = int64(1e3)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < tuples; i++ {
		ts := int64(i) * period
		if err := eng.PushR(pbR{Key: rK[i], Val: rV[i]}, ts); err != nil {
			return probeRow{}, err
		}
		if err := eng.PushS(pbS{Key: sK[i], Val: sV[i]}, ts); err != nil {
			return probeRow{}, err
		}
	}
	if err := eng.Close(); err != nil {
		return probeRow{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	st := eng.Stats()
	n := float64(2 * tuples)
	return probeRow{
		Mix:              m.name,
		Index:            probeIndexName(index),
		TuplesPerSec:     n / elapsed.Seconds(),
		AllocsPerTuple:   float64(m1.Mallocs-m0.Mallocs) / n,
		Results:          st.Results,
		ProbeScan:        st.ProbeScan,
		ProbeHash:        st.ProbeHash,
		ProbeBTree:       st.ProbeBTree,
		StrategySwitches: st.StrategySwitches,
	}, nil
}

func probeExperiment() error {
	div := 1
	if *quick {
		div = 4
	}
	// The enforced bars relax under -quick: shorter runs leave the
	// crossover model less settling time and more timer noise.
	bandBar, autoBar := 2.0, 0.9
	if *quick {
		bandBar, autoBar = 1.5, 0.8
	}
	rep := probeReport{
		Experiment: "adaptive-probe",
		Workers:    2,
		LaneBatch:  64,
		Note: "Each mix joined under every admissible static access path " +
			"and under IndexAuto (per-key-group strategy selection with a " +
			"measured crossover model and hysteresis). Rows run " +
			"sequentially on the same generated streams; results verify " +
			"the paths agree (same predicate, same schedule). The " +
			"probe_scan/hash/btree columns are the engine's strategy-mix " +
			"counters; their sum is the probe dispatch count. Enforced: " +
			"band-heavy auto >= 2x scan (the B-tree claim), auto >= 0.9x " +
			"the best static on every mix (the adaptivity claim).",
	}
	fmt.Printf("# adaptive probe strategies, 2 workers, lane batch 64\n")
	emit("mix", "index", "tuples/sec", "allocs/tuple", "results", "scan", "hash", "btree", "switches")
	// Fast rows finish in tens of milliseconds, where timer noise swamps
	// a single measurement; each row repeats (identical schedule, fresh
	// engine) until it has minWall of wall time or the rep cap, and
	// reports its best rep — max is robust against slow outliers and
	// both sides of every enforced ratio get the same treatment.
	minWall := 400 * time.Millisecond
	if *quick {
		minWall = 200 * time.Millisecond
	}
	type checkErr struct{ msg string }
	var failures []checkErr
	for _, m := range probeMixes() {
		tuples := m.tuples / div
		rows := map[string]probeRow{}
		var wantResults uint64
		for i, idx := range append(append([]handshakejoin.IndexKind{}, m.statics...), handshakejoin.IndexAuto) {
			var row probeRow
			start := time.Now()
			for rep := 0; rep < 5 && (rep == 0 || time.Since(start) < minWall); rep++ {
				r, err := runProbeRow(m, idx, tuples)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", m.name, probeIndexName(idx), err)
				}
				if rep > 0 && r.Results != row.Results {
					return fmt.Errorf("%s/%s: results differ across identical reps (%d vs %d)",
						m.name, r.Index, r.Results, row.Results)
				}
				if rep == 0 || r.TuplesPerSec > row.TuplesPerSec {
					row = r
				}
			}
			if i == 0 {
				wantResults = row.Results
			} else if row.Results != wantResults {
				return fmt.Errorf("%s/%s produced %d results, scan produced %d: access paths disagree",
					m.name, row.Index, row.Results, wantResults)
			}
			if scan, ok := rows["scan"]; ok && scan.TuplesPerSec > 0 {
				row.SpeedupVsScan = row.TuplesPerSec / scan.TuplesPerSec
			} else {
				row.SpeedupVsScan = 1
			}
			rows[row.Index] = row
			rep.Rows = append(rep.Rows, row)
			emit(row.Mix, row.Index,
				fmt.Sprintf("%.0f", row.TuplesPerSec),
				fmt.Sprintf("%.4f", row.AllocsPerTuple),
				row.Results, row.ProbeScan, row.ProbeHash, row.ProbeBTree, row.StrategySwitches)
		}
		bestStatic := rows[probeIndexName(m.statics[0])]
		for _, idx := range m.statics {
			if r := rows[probeIndexName(idx)]; r.TuplesPerSec > bestStatic.TuplesPerSec {
				bestStatic = r
			}
		}
		auto := rows["auto"]
		if m.name == "band_heavy" && auto.SpeedupVsScan < bandBar {
			failures = append(failures, checkErr{fmt.Sprintf(
				"band_heavy: auto is %.2fx scan, want >= %.1fx", auto.SpeedupVsScan, bandBar)})
		}
		if auto.TuplesPerSec < autoBar*bestStatic.TuplesPerSec {
			failures = append(failures, checkErr{fmt.Sprintf(
				"%s: auto %.0f t/s vs best static (%s) %.0f t/s — below %.0f%%",
				m.name, auto.TuplesPerSec, bestStatic.Index, bestStatic.TuplesPerSec, autoBar*100)})
		}
		// -maxallocs extends the ingest guard to the probe path: the
		// adaptive dispatcher's per-arrival work is supposed to be
		// closure-free, so auto may not out-allocate the best static by
		// more than the flag's slack.
		if *maxAllocs > 0 && auto.AllocsPerTuple > bestStatic.AllocsPerTuple+*maxAllocs {
			failures = append(failures, checkErr{fmt.Sprintf(
				"%s: auto allocs/tuple %.4f exceeds best static %.4f + budget %.4f",
				m.name, auto.AllocsPerTuple, bestStatic.AllocsPerTuple, *maxAllocs)})
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", *jsonOut)
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "llhjbench probe: FAIL %s\n", f.msg)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d enforced check(s) failed", len(failures))
	}
	fmt.Printf("# enforced checks passed (band >= %.1fx scan, auto >= %.0f%% of best static)\n", bandBar, autoBar*100)
	return nil
}
