package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"handshakejoin"
	"handshakejoin/internal/workload"
)

// shardExperiment measures the live (wall-clock) scaling of the
// hash-sharded engine layer: aggregate throughput and tail latency of
// the equi-join workload at a fixed total worker budget, with the
// budget split across 1..N shards. Unlike the fig*/table2 experiments
// this is not a reproduction of a paper figure — it is the repository's
// own scaling curve beyond the paper (the paper scales one pipeline;
// sharding multiplies pipelines), tracked across PRs via
// BENCH_shard.json.
type shardRow struct {
	Shards          int     `json:"shards"`
	WorkersPerShard int     `json:"workers_per_shard"`
	TuplesPerSec    float64 `json:"tuples_per_sec"`
	P50LatencyMs    float64 `json:"p50_latency_ms"`
	P99LatencyMs    float64 `json:"p99_latency_ms"`
	Results         uint64  `json:"results"`
}

type shardReport struct {
	Experiment      string     `json:"experiment"`
	TotalWorkers    int        `json:"total_workers"`
	WindowCount     int        `json:"window_count"`
	Batch           int        `json:"batch"`
	TuplesPerStream int        `json:"tuples_per_stream"`
	Rows            []shardRow `json:"rows"`
}

func shardScaling() error {
	const totalWorkers = 8
	tuples := 400000
	if *quick {
		tuples = 80000
	}
	rep := shardReport{
		Experiment:      "shard-scaling",
		TotalWorkers:    totalWorkers,
		WindowCount:     2048,
		Batch:           64,
		TuplesPerStream: tuples,
	}
	fmt.Printf("# live equi-join scaling, %d total workers, %d tuples/stream, count windows %d\n",
		totalWorkers, tuples, rep.WindowCount)
	emit("shards", "workers/shard", "tuples/sec", "p50(ms)", "p99(ms)", "results")
	for _, shards := range shardList(totalWorkers) {
		row, err := runShardRow(totalWorkers, shards, rep.WindowCount, rep.Batch, tuples)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, row)
		emit(row.Shards, row.WorkersPerShard,
			fmt.Sprintf("%.0f", row.TuplesPerSec),
			fmt.Sprintf("%.3f", row.P50LatencyMs),
			fmt.Sprintf("%.3f", row.P99LatencyMs),
			row.Results)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", *jsonOut)
	}
	return nil
}

// shardList parses -shards, dropping counts that do not divide the
// worker budget.
func shardList(totalWorkers int) []int {
	var out []int
	for _, n := range parseInts(*shardsFlag) {
		if n > 0 && totalWorkers%n == 0 {
			out = append(out, n)
		} else {
			fmt.Fprintf(os.Stderr, "llhjbench shard: ignoring shard count %d (must divide the %d-worker budget)\n", n, totalWorkers)
		}
	}
	if len(out) == 0 {
		fmt.Fprintf(os.Stderr, "llhjbench shard: no usable -shards values, using the default 1,2,4,8\n")
		out = []int{1, 2, 4, 8}
	}
	return out
}

func runShardRow(totalWorkers, shards, window, batch, tuples int) (shardRow, error) {
	var mu sync.Mutex
	var lats []int64
	var results uint64
	cfg := handshakejoin.Config[workload.RTuple, workload.STuple]{
		Workers:     totalWorkers / shards,
		Shards:      shards,
		Predicate:   workload.EquiPredicate,
		WindowR:     handshakejoin.Window{Count: window},
		WindowS:     handshakejoin.Window{Count: window},
		Batch:       batch,
		MaxInFlight: 8,
		KeyR:        workload.RKey,
		KeyS:        workload.SKey,
		Obs:         obsCfg(),
		OnOutput: func(it handshakejoin.Item[workload.RTuple, workload.STuple]) {
			if it.Punct {
				return
			}
			p := it.Result.Pair
			in := p.R.Wall
			if p.S.Wall > in {
				in = p.S.Wall
			}
			mu.Lock()
			results++
			if results%8 == 0 { // sample the latency distribution
				lats = append(lats, it.Result.At-in)
			}
			mu.Unlock()
		},
	}
	eng, err := handshakejoin.New(cfg)
	if err != nil {
		return shardRow{}, err
	}
	gen := workload.NewGenerator(workload.DefaultConfig(1e6))
	start := time.Now()
	for i := 0; i < tuples; i++ {
		r := gen.NextR()
		s := gen.NextS()
		if err := eng.PushR(r.Payload, r.TS); err != nil {
			return shardRow{}, err
		}
		if err := eng.PushS(s.Payload, s.TS); err != nil {
			return shardRow{}, err
		}
	}
	elapsed := time.Since(start)
	if err := eng.Close(); err != nil {
		return shardRow{}, err
	}
	row := shardRow{
		Shards:          shards,
		WorkersPerShard: totalWorkers / shards,
		TuplesPerSec:    float64(2*tuples) / elapsed.Seconds(),
		Results:         eng.Stats().Results,
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		row.P50LatencyMs = float64(lats[len(lats)/2]) / 1e6
		row.P99LatencyMs = float64(lats[len(lats)*99/100]) / 1e6
	}
	return row, nil
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err == nil {
			out = append(out, n)
		}
	}
	return out
}
