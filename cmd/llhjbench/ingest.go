package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"handshakejoin"
	"handshakejoin/internal/workload"
)

// ingestExperiment measures the sharded ingress path by caller-batch
// size: the same tuple stream submitted per-tuple (PushR/PushS) and in
// caller batches of 64 and 256 (PushRBatch/PushSBatch). The predicate
// never matches — R and S draw keys from disjoint domains — and the
// nodes are hash-indexed, so probes are O(1) misses and what is
// measured is the admission tax itself: side lock, routing, window
// accounting, expiry scheduling, gate tickets and lane hand-off. On
// the single-core CI container this tax is total work, so the
// amortization shows up directly in tuples/s. Tracked across PRs via
// BENCH_ingest.json.
//
// Allocations are measured over the whole run (runtime.MemStats
// deltas, all goroutines): with the slice pools the push path recycles
// its batch, probe and expiry-message backings, so allocs/tuple is the
// residual churn of the window stores and queues.
type ingestRow struct {
	Mode         string  `json:"mode"`
	CallerBatch  int     `json:"caller_batch"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// AllocsPerTuple / BytesPerTuple are heap allocations (count and
	// bytes) per pushed tuple over the whole run, engine close
	// included.
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
	BytesPerTuple  float64 `json:"bytes_per_tuple"`
	// Speedup / AllocsReduction are relative to the per-tuple row.
	Speedup         float64 `json:"speedup_vs_per_tuple"`
	AllocsReduction float64 `json:"allocs_reduction_vs_per_tuple"`
}

type ingestReport struct {
	Experiment      string      `json:"experiment"`
	Shards          int         `json:"shards"`
	WorkersPerShard int         `json:"workers_per_shard"`
	WindowCount     int         `json:"window_count"`
	LaneBatch       int         `json:"lane_batch"`
	KeyDomain       int         `json:"key_domain"`
	TuplesPerStream int         `json:"tuples_per_stream"`
	Note            string      `json:"note"`
	Rows            []ingestRow `json:"rows"`
}

const (
	ingShards  = 4
	ingWorkers = 1
	ingWindow  = 4096
	ingBatch   = 64
	ingKeys    = 1024
)

// igR / igS carry only a join key; their domains are disjoint so no
// pair ever matches and the run isolates ingress cost.
type igR struct{ Key uint64 }
type igS struct{ Key uint64 }

func runIngestRow(mode string, callerBatch, tuples int) (ingestRow, error) {
	cfg := handshakejoin.Config[igR, igS]{
		Workers:     ingWorkers,
		Shards:      ingShards,
		Predicate:   func(r igR, s igS) bool { return r.Key == s.Key },
		WindowR:     handshakejoin.Window{Count: ingWindow},
		WindowS:     handshakejoin.Window{Count: ingWindow},
		Batch:       ingBatch,
		MaxInFlight: 16,
		Index:       handshakejoin.HashIndex,
		KeyR:        func(r igR) uint64 { return r.Key },
		KeyS:        func(s igS) uint64 { return s.Key },
		Obs:         obsCfg(),
		OnOutput:    func(handshakejoin.Item[igR, igS]) {},
	}
	eng, err := handshakejoin.New(cfg)
	if err != nil {
		return ingestRow{}, err
	}
	rnd := workload.NewRand(7)
	rKeys := make([]uint64, tuples)
	sKeys := make([]uint64, tuples)
	for i := range rKeys {
		rKeys[i] = uint64(rnd.Intn(ingKeys))
		sKeys[i] = uint64(ingKeys + rnd.Intn(ingKeys)) // disjoint: never matches R
	}
	const period = int64(1e3)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if callerBatch <= 1 {
		for i := 0; i < tuples; i++ {
			ts := int64(i) * period
			if err := eng.PushR(igR{Key: rKeys[i]}, ts); err != nil {
				return ingestRow{}, err
			}
			if err := eng.PushS(igS{Key: sKeys[i]}, ts); err != nil {
				return ingestRow{}, err
			}
		}
	} else {
		bufR := make([]handshakejoin.Stamped[igR], 0, callerBatch)
		bufS := make([]handshakejoin.Stamped[igS], 0, callerBatch)
		for i := 0; i < tuples; i++ {
			ts := int64(i) * period
			bufR = append(bufR, handshakejoin.Stamped[igR]{Payload: igR{Key: rKeys[i]}, TS: ts})
			bufS = append(bufS, handshakejoin.Stamped[igS]{Payload: igS{Key: sKeys[i]}, TS: ts})
			if len(bufR) == callerBatch {
				if err := eng.PushRBatch(bufR); err != nil {
					return ingestRow{}, err
				}
				if err := eng.PushSBatch(bufS); err != nil {
					return ingestRow{}, err
				}
				bufR, bufS = bufR[:0], bufS[:0]
			}
		}
		if err := eng.PushRBatch(bufR); err != nil {
			return ingestRow{}, err
		}
		if err := eng.PushSBatch(bufS); err != nil {
			return ingestRow{}, err
		}
	}
	if err := eng.Close(); err != nil {
		return ingestRow{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(2 * tuples)
	return ingestRow{
		Mode:           mode,
		CallerBatch:    callerBatch,
		TuplesPerSec:   n / elapsed.Seconds(),
		AllocsPerTuple: float64(m1.Mallocs-m0.Mallocs) / n,
		BytesPerTuple:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
	}, nil
}

func ingestExperiment() error {
	tuples := 400000
	if *quick {
		tuples = 60000
	}
	rep := ingestReport{
		Experiment:      "batched-ingress",
		Shards:          ingShards,
		WorkersPerShard: ingWorkers,
		WindowCount:     ingWindow,
		LaneBatch:       ingBatch,
		KeyDomain:       ingKeys,
		TuplesPerStream: tuples,
		Note: "Same tuple stream pushed per-tuple vs in caller batches; " +
			"never-matching hash-indexed predicate isolates the admission " +
			"tax (side lock, routing, window accounting, expiry schedule, " +
			"gates, lane hand-off), which on one core is total work. " +
			"allocs/tuple counts the whole process over the run. The " +
			"per-tuple row rides the same per-lane slice pools as the " +
			"batch rows (flush, probe and expiry backings recycle), which " +
			"is why their allocations sit together: the pre-batching " +
			"seed, measured on this exact workload (4 shards, 4096-count " +
			"windows, hash index, per-tuple PushR/PushS), ran 0.27 " +
			"allocs/tuple and 569 B/tuple at ~1.69M tuples/s — every row " +
			"here is ~2 orders of magnitude below it in allocs and the " +
			"per-tuple row itself ~1.5x above it in throughput; the " +
			"speedup column is the batch amortization on top of that. " +
			"With the ring-slot " +
			"window store (seq->slot array arithmetic instead of map " +
			"churn, intrusive hash-index chains) the residual ceiling is " +
			"the protocol itself: probe scans, expedition round trips and " +
			"expiry traffic, not storage maintenance.",
	}
	fmt.Printf("# batched ingress, %d shards x %d worker, count windows %d, lane batch %d, %d tuples/stream\n",
		ingShards, ingWorkers, ingWindow, ingBatch, tuples)
	emit("mode", "tuples/sec", "allocs/tuple", "B/tuple", "speedup", "allocs-reduction")
	modes := []struct {
		name string
		cb   int
	}{
		{"per-tuple", 1},
		{"batch-64", 64},
		{"batch-256", 256},
	}
	// Best-of-reps, as in the probe experiment: a single row is a few
	// hundred milliseconds of wall clock, which on a shared CI core is
	// inside scheduler-noise territory. Each mode reruns (identical
	// stream, fresh engine) until the cumulative wall clock clears
	// minWall or the rep cap, and the fastest rep is reported.
	minWall := 800 * time.Millisecond
	maxReps := 5
	if *quick {
		minWall, maxReps = 200*time.Millisecond, 3
	}
	var base ingestRow
	for i, m := range modes {
		var row ingestRow
		var wall time.Duration
		for rep := 0; rep < maxReps; rep++ {
			r, err := runIngestRow(m.name, m.cb, tuples)
			if err != nil {
				return err
			}
			wall += time.Duration(float64(2*tuples) / r.TuplesPerSec * float64(time.Second))
			if rep == 0 || r.TuplesPerSec > row.TuplesPerSec {
				row = r
			}
			if wall >= minWall {
				break
			}
		}
		if i == 0 {
			base = row
			row.Speedup = 1
			row.AllocsReduction = 1
		} else {
			if base.TuplesPerSec > 0 {
				row.Speedup = row.TuplesPerSec / base.TuplesPerSec
			}
			if row.AllocsPerTuple > 0 {
				row.AllocsReduction = base.AllocsPerTuple / row.AllocsPerTuple
			}
		}
		rep.Rows = append(rep.Rows, row)
		emit(row.Mode,
			fmt.Sprintf("%.0f", row.TuplesPerSec),
			fmt.Sprintf("%.4f", row.AllocsPerTuple),
			fmt.Sprintf("%.1f", row.BytesPerTuple),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%.2fx", row.AllocsReduction))
	}
	// -maxallocs turns the experiment into a regression guard: the push
	// path is supposed to be allocation-free in steady state, and a leak
	// anywhere on it (a dropped pool, an escaping message, a map reborn
	// in the window store) shows up here long before it shows up in
	// throughput. CI pins the budget at roughly twice the committed
	// BENCH_ingest.json figure.
	if *maxAllocs > 0 {
		for _, row := range rep.Rows {
			if row.AllocsPerTuple > *maxAllocs {
				return fmt.Errorf("allocs/tuple regression: %s ran %.4f, budget %.4f",
					row.Mode, row.AllocsPerTuple, *maxAllocs)
			}
		}
		fmt.Printf("# allocs/tuple within budget %.4f\n", *maxAllocs)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", *jsonOut)
	}
	return nil
}
