// Command llhjtrace records and replays deterministic join runs.
//
// A trace file captures the exact driver schedule (arrival batches and
// expiry messages at both pipeline ends) plus the result sequence of a
// simulated low-latency handshake join. Because the simulator is fully
// deterministic, replaying the schedule must reproduce the results
// event for event — `llhjtrace verify` checks that, which makes traces
// useful both for debugging protocol changes and as regression
// artifacts.
//
// Usage:
//
//	llhjtrace record -o trace.jsonl [-tuples N] [-nodes N] [-seed S] [-batch B] [-window MS]
//	llhjtrace verify -i trace.jsonl
//	llhjtrace stats  -i trace.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"handshakejoin/internal/core"
	"handshakejoin/internal/pipeline"
	"handshakejoin/internal/stream"
	"handshakejoin/internal/workload"
)

// header describes the run configuration; it is the first trace line.
type header struct {
	Kind     string `json:"kind"` // "header"
	Tuples   int    `json:"tuples"`
	Nodes    int    `json:"nodes"`
	Seed     uint64 `json:"seed"`
	Batch    int    `json:"batch"`
	WindowMS int64  `json:"window_ms"`
	Jitter   int64  `json:"jitter_ns"`
}

// actionRec is one driver injection.
type actionRec struct {
	Kind string   `json:"kind"` // "action"
	Due  int64    `json:"due"`
	End  int      `json:"end"`
	Msg  string   `json:"msg"`  // arrival | ack | expedition-end | expiry
	Side string   `json:"side"` // R | S
	Seqs []uint64 `json:"seqs,omitempty"`
	N    int      `json:"n,omitempty"` // arrival batch size
}

// resultRec is one emitted join pair.
type resultRec struct {
	Kind string `json:"kind"` // "result"
	R    uint64 `json:"r"`
	S    uint64 `json:"s"`
	At   int64  `json:"at"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	out := fs.String("o", "trace.jsonl", "output trace file (record)")
	in := fs.String("i", "trace.jsonl", "input trace file (verify/stats)")
	tuples := fs.Int("tuples", 2000, "tuples per stream")
	nodes := fs.Int("nodes", 6, "pipeline nodes")
	seed := fs.Uint64("seed", 42, "workload seed")
	batch := fs.Int("batch", 8, "driver batch size")
	windowMS := fs.Int64("window", 100, "window length in virtual milliseconds")
	jitter := fs.Int64("jitter", 2000, "delivery jitter in virtual ns")
	fs.Parse(os.Args[2:])

	var err error
	switch cmd {
	case "record":
		err = record(*out, header{
			Kind: "header", Tuples: *tuples, Nodes: *nodes, Seed: *seed,
			Batch: *batch, WindowMS: *windowMS, Jitter: *jitter,
		})
	case "verify":
		err = verify(*in)
	case "stats":
		err = stats(*in)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "llhjtrace %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: llhjtrace <record|verify|stats> [flags]")
}

// run executes the configured simulation, streaming actions and results
// to the callbacks.
func run(h header, onAction func(actionRec), onResult func(resultRec)) error {
	cfg := workload.Config{Seed: h.Seed, Domain: 200, RatePerSec: 1000}
	gen := workload.NewGenerator(cfg)
	remainingR, remainingS := h.Tuples, h.Tuples
	feed, err := pipeline.NewFeed(pipeline.FeedConfig[workload.RTuple, workload.STuple]{
		NextR: func() (stream.Tuple[workload.RTuple], bool) {
			if remainingR == 0 {
				var z stream.Tuple[workload.RTuple]
				return z, false
			}
			remainingR--
			return gen.NextR(), true
		},
		NextS: func() (stream.Tuple[workload.STuple], bool) {
			if remainingS == 0 {
				var z stream.Tuple[workload.STuple]
				return z, false
			}
			remainingS--
			return gen.NextS(), true
		},
		WindowR: pipeline.WindowSpec{Duration: h.WindowMS * 1e6},
		WindowS: pipeline.WindowSpec{Duration: h.WindowMS * 1e6},
		Batch:   h.Batch,
	})
	if err != nil {
		return err
	}

	ncfg := &core.Config[workload.RTuple, workload.STuple]{Nodes: h.Nodes, Pred: workload.BandPredicate}
	cost := pipeline.DefaultCostModel()
	cost.Jitter = h.Jitter
	cost.JitterSeed = h.Seed
	sim := pipeline.NewSim(h.Nodes, func(k int) core.NodeLogic[workload.RTuple, workload.STuple] {
		return core.NewNode(ncfg, k)
	}, cost)
	if onResult != nil {
		sim.OnResult(func(_ int, r core.Result[workload.RTuple, workload.STuple]) {
			onResult(resultRec{Kind: "result", R: r.Pair.R.Seq, S: r.Pair.S.Seq, At: r.At})
		})
	}

	// Drain the feed manually so actions can be recorded as they are
	// injected.
	for {
		a, ok := feed.Next()
		if !ok {
			break
		}
		if onAction != nil {
			rec := actionRec{
				Kind: "action", Due: a.Due, End: int(a.End),
				Msg: a.Msg.Kind.String(), Side: a.Msg.Side.String(),
			}
			if a.Msg.Kind == core.KindArrival {
				rec.N = a.Msg.Len()
			} else {
				rec.Seqs = a.Msg.Seqs
			}
			onAction(rec)
		}
		sim.Inject(a.Due, a.End, a.Msg)
		sim.RunUntil(a.Due, nil)
	}
	sim.Drain(nil)
	return nil
}

func record(path string, h header) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()
	enc := json.NewEncoder(w)
	if err := enc.Encode(h); err != nil {
		return err
	}
	actions, results := 0, 0
	err = run(h,
		func(a actionRec) { enc.Encode(a); actions++ },
		func(r resultRec) { enc.Encode(r); results++ })
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d actions, %d results to %s\n", actions, results, path)
	return nil
}

// readTrace parses a trace file.
func readTrace(path string) (header, []resultRec, int, error) {
	var h header
	var results []resultRec
	actions := 0
	f, err := os.Open(path)
	if err != nil {
		return h, nil, 0, err
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReader(f))
	if err := dec.Decode(&h); err != nil {
		return h, nil, 0, fmt.Errorf("reading header: %w", err)
	}
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return h, nil, 0, err
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return h, nil, 0, err
		}
		switch probe.Kind {
		case "action":
			actions++
		case "result":
			var r resultRec
			if err := json.Unmarshal(raw, &r); err != nil {
				return h, nil, 0, err
			}
			results = append(results, r)
		}
	}
	return h, results, actions, nil
}

func verify(path string) error {
	h, want, _, err := readTrace(path)
	if err != nil {
		return err
	}
	var got []resultRec
	if err := run(h, nil, func(r resultRec) { got = append(got, r) }); err != nil {
		return err
	}
	if len(got) != len(want) {
		return fmt.Errorf("replay produced %d results, trace has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("result %d diverged: replay %+v, trace %+v", i, got[i], want[i])
		}
	}
	fmt.Printf("verified: %d results identical\n", len(got))
	return nil
}

func stats(path string) error {
	h, results, actions, err := readTrace(path)
	if err != nil {
		return err
	}
	var maxLat, sumLat int64
	// Latency is At − max(tuple timestamps); tuple wall times equal
	// their virtual timestamps in simulated traces, reconstructed from
	// the seqs via the known rate (1000 tuples/s → 1 ms apart).
	period := int64(1e6)
	for _, r := range results {
		later := int64(r.R) * period
		if s := int64(r.S) * period; s > later {
			later = s
		}
		lat := r.At - later
		sumLat += lat
		if lat > maxLat {
			maxLat = lat
		}
	}
	fmt.Printf("trace: %d tuples/stream, %d nodes, batch %d, window %dms, seed %d\n",
		h.Tuples, h.Nodes, h.Batch, h.WindowMS, h.Seed)
	fmt.Printf("actions: %d, results: %d\n", actions, len(results))
	if len(results) > 0 {
		fmt.Printf("latency: avg %.3fms, max %.3fms\n",
			float64(sumLat)/float64(len(results))/1e6, float64(maxLat)/1e6)
	}
	return nil
}
