package handshakejoin

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"handshakejoin/internal/kang"
	"handshakejoin/internal/shard"
	"handshakejoin/internal/stream"
	"handshakejoin/internal/workload"
)

// The tests in this file establish the correctness claim of the
// sharded engine layer: for any shard count, the hash-sharded engine
// produces exactly the multiset of pairs that a sequential reference
// (Kang's three-step procedure, driven shard-by-shard with the exact
// same routing and window-boundary schedule) produces — and in Ordered
// mode, the exact globally sorted sequence. The oracle reuses the real
// windowTracker, shard.Partitioner and shard.ExpiryQueue, so the only
// thing under test is the pipeline + merge machinery.

// okR / okS are key-carrying payloads for the sharded oracle workloads.
type okR struct {
	Key uint64
	Val int32
}

type okS struct {
	Key uint64
	Val int32
}

func okRKey(r okR) uint64 { return r.Key }
func okSKey(s okS) uint64 { return s.Key }

// shardedEqui is the plain equi-join predicate.
func shardedEqui(r okR, s okS) bool { return r.Key == s.Key }

// shardedBandWithinKey joins tuples of equal key whose values lie
// within a band — the "band within key" shape sharding supports
// (the predicate still implies key equality).
func shardedBandWithinKey(r okR, s okS) bool {
	if r.Key != s.Key {
		return false
	}
	d := r.Val - s.Val
	if d < 0 {
		d = -d
	}
	return d <= 3
}

// oracleShard replays one shard's exact driver schedule — batch
// buffers, expiry queues and flush rules mirror shard.Lane — into a
// sequential Kang join.
type oracleShard struct {
	batch      int
	rBatch     []stream.Tuple[okR]
	sBatch     []stream.Tuple[okS]
	rExp, sExp *shard.ExpiryQueue
	rInj, sInj uint64
	j          *kang.Join[okR, okS]
}

func (o *oracleShard) queueExpiry(side stream.Side, seq uint64, due int64, counted bool) {
	q := o.rExp
	if side == stream.S {
		q = o.sExp
	}
	if counted {
		q.PushCnt(seq, due, false)
	} else {
		q.PushDur(seq, due, false)
	}
}

func (o *oracleShard) pushR(t stream.Tuple[okR]) {
	o.rBatch = append(o.rBatch, t)
	if len(o.rBatch) >= o.batch {
		o.flushR()
	}
}

func (o *oracleShard) pushS(t stream.Tuple[okS]) {
	o.sBatch = append(o.sBatch, t)
	if len(o.sBatch) >= o.batch {
		o.flushS()
	}
}

func (o *oracleShard) flushR() {
	if len(o.rBatch) == 0 {
		return
	}
	due := o.rBatch[len(o.rBatch)-1].TS
	for _, seq := range o.sExp.PopDue(due, o.sInj) {
		o.j.ExpireS(seq)
	}
	for _, t := range o.rBatch {
		o.j.ProcessR(t)
	}
	o.rInj = o.rBatch[len(o.rBatch)-1].Seq + 1
	o.rBatch = nil
}

func (o *oracleShard) flushS() {
	if len(o.sBatch) == 0 {
		return
	}
	due := o.sBatch[len(o.sBatch)-1].TS
	for _, seq := range o.rExp.PopDue(due, o.rInj) {
		o.j.ExpireR(seq)
	}
	for _, t := range o.sBatch {
		o.j.ProcessS(t)
	}
	o.sInj = o.sBatch[len(o.sBatch)-1].Seq + 1
	o.sBatch = nil
}

func (o *oracleShard) tick(ts int64) {
	o.flushR()
	o.flushS()
	for _, seq := range o.sExp.PopDue(ts, o.sInj) {
		o.j.ExpireS(seq)
	}
	for _, seq := range o.rExp.PopDue(ts, o.rInj) {
		o.j.ExpireR(seq)
	}
}

func (o *oracleShard) close() {
	o.flushR()
	o.flushS()
}

// orderedKey identifies a result in the deterministic global order.
type orderedKey struct {
	TS         int64
	RSeq, SSeq uint64
}

// oracleEngine mirrors the sharded driver: global sequence numbers,
// global window accounting, hash routing — feeding oracleShards.
type oracleEngine struct {
	part       shard.Partitioner
	shards     []*oracleShard
	rSeq, sSeq uint64
	rWin, sWin windowTracker

	pairs   map[stream.PairKey]int
	results []orderedKey
}

func newOracleEngine(cfg Config[okR, okS], pred stream.Predicate[okR, okS]) *oracleEngine {
	o := &oracleEngine{
		part:  shard.NewPartitioner(max(cfg.Shards, 1)),
		rWin:  windowTracker{spec: cfg.WindowR},
		sWin:  windowTracker{spec: cfg.WindowS},
		pairs: map[stream.PairKey]int{},
	}
	for i := 0; i < o.part.Shards(); i++ {
		sh := &oracleShard{
			batch: cfg.Batch,
			rExp:  shard.NewExpiryQueue(cfg.WindowR.dualBound()),
			sExp:  shard.NewExpiryQueue(cfg.WindowS.dualBound()),
		}
		sh.j = kang.New(pred, func(p stream.Pair[okR, okS]) {
			o.pairs[p.Key()]++
			o.results = append(o.results, orderedKey{TS: p.TS(), RSeq: p.R.Seq, SSeq: p.S.Seq})
		})
		o.shards = append(o.shards, sh)
	}
	return o
}

func (o *oracleEngine) pushR(payload okR, ts int64) {
	lane := o.part.Of(payload.Key)
	t := stream.Tuple[okR]{Seq: o.rSeq, TS: ts, Wall: ts, Home: stream.NoHome, Payload: payload}
	o.rSeq++
	o.rWin.onArrival(t.Seq, ts, lane, 0, func(lane int, _ uint32, seq uint64, due int64, counted, _ bool) {
		o.shards[lane].queueExpiry(stream.R, seq, due, counted)
	})
	o.shards[lane].pushR(t)
}

func (o *oracleEngine) pushS(payload okS, ts int64) {
	lane := o.part.Of(payload.Key)
	t := stream.Tuple[okS]{Seq: o.sSeq, TS: ts, Wall: ts, Home: stream.NoHome, Payload: payload}
	o.sSeq++
	o.sWin.onArrival(t.Seq, ts, lane, 0, func(lane int, _ uint32, seq uint64, due int64, counted, _ bool) {
		o.shards[lane].queueExpiry(stream.S, seq, due, counted)
	})
	o.shards[lane].pushS(t)
}

func (o *oracleEngine) tick(ts int64) {
	for _, sh := range o.shards {
		sh.tick(ts)
	}
}

func (o *oracleEngine) close() {
	for _, sh := range o.shards {
		sh.close()
	}
}

// orderedResults returns the deterministic global output order: by
// result timestamp, ties broken by input sequence numbers — exactly
// the order the punctuation-driven sorter guarantees.
func (o *oracleEngine) orderedResults() []orderedKey {
	out := append([]orderedKey(nil), o.results...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].RSeq != out[j].RSeq {
			return out[i].RSeq < out[j].RSeq
		}
		return out[i].SSeq < out[j].SSeq
	})
	return out
}

// shardedSchedule drives identical push/tick schedules into the engine
// under test and the oracle. The workload interleaves both streams
// with a mild rate skew, shared timestamps (equality edge cases) and
// periodic idle ticks.
func shardedSchedule(t *testing.T, tuples int, seed uint64, eng Joiner[okR, okS], o *oracleEngine) {
	t.Helper()
	shardedScheduleBetween(t, tuples, seed, eng, o, nil)
}

// shardedScheduleBetween is shardedSchedule with a per-step callback
// (invoked after each step's pushes), for suites that inject control
// actions — migrations, strategy flips — at deterministic points.
func shardedScheduleBetween(t *testing.T, tuples int, seed uint64, eng Joiner[okR, okS], o *oracleEngine, between func(i int)) {
	t.Helper()
	rnd := workload.NewRand(seed)
	const step = int64(1e6)
	const keys = 24
	ts := int64(0)
	for i := 0; i < tuples; i++ {
		ts += int64(rnd.Intn(3)) * step / 2
		r := okR{Key: uint64(rnd.Intn(keys)), Val: int32(rnd.Intn(12))}
		if err := eng.PushR(r, ts); err != nil {
			t.Fatal(err)
		}
		o.pushR(r, ts)
		if i%3 != 0 { // mild rate skew between the streams
			s := okS{Key: uint64(rnd.Intn(keys)), Val: int32(rnd.Intn(12))}
			if err := eng.PushS(s, ts); err != nil {
				t.Fatal(err)
			}
			o.pushS(s, ts)
		}
		if i%97 == 96 { // idle period: advance stream time without tuples
			ts += 20 * step
			eng.Tick(ts)
			o.tick(ts)
		}
		if between != nil {
			between(i)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	o.close()
}

func diffPairMultiset(want, got map[stream.PairKey]int) (missing, extra, dups int) {
	for k, w := range want {
		if g := got[k]; g < w {
			missing += w - g
		}
	}
	for k, g := range got {
		if w := want[k]; g > w {
			extra += g - w
		}
		if g > 1 {
			dups += g - 1
		}
	}
	return
}

func TestShardedMatchesOracleExactly(t *testing.T) {
	// Window sizes respect the operator's contract (Config.MaxInFlight
	// docs): the in-flight volume must stay far below the per-shard
	// window span, or expiries race their tuples through the pipeline.
	// With 8 shards, batch 4 and MaxInFlight 2, safety needs window
	// >= shards*batch*MaxInFlight = 64 tuples; the sizes below keep a
	// ~3x margin. The schedule pushes ~2 R and ~1.3 S tuples per step.
	const step = int64(1e6)
	windows := []struct {
		name       string
		winR, winS Window
	}{
		{"count", Window{Count: 200}, Window{Count: 190}},
		{"time", Window{Duration: time.Duration(120 * step)}, Window{Duration: time.Duration(160 * step)}},
		{"both", Window{Duration: time.Duration(140 * step), Count: 210}, Window{Duration: time.Duration(160 * step), Count: 190}},
	}
	preds := []struct {
		name string
		pred func(okR, okS) bool
	}{
		{"equi", shardedEqui},
		{"band-within-key", shardedBandWithinKey},
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, win := range windows {
			for _, pc := range preds {
				for _, batch := range []int{1, 4} {
					name := fmt.Sprintf("shards=%d/%s/%s/batch=%d", shards, win.name, pc.name, batch)
					t.Run(name, func(t *testing.T) {
						cfg := Config[okR, okS]{
							Workers:     3,
							Shards:      shards,
							Predicate:   pc.pred,
							WindowR:     win.winR,
							WindowS:     win.winS,
							Batch:       batch,
							MaxInFlight: 2,
							KeyR:        okRKey,
							KeyS:        okSKey,
							// The oracle replays the exact batch-flush
							// schedule; idle-shard heartbeats flush
							// partial batches on wall-clock time, which
							// is valid (Tick-equivalent) but not what
							// this deterministic replica models. The
							// heartbeat- and rebalance-exactness tests
							// run with Batch: 1, where boundaries are
							// schedule-independent.
							Adapt: AdaptConfig{DisableHeartbeat: true},
						}
						var mu sync.Mutex
						got := map[stream.PairKey]int{}
						cfg.OnOutput = func(it Item[okR, okS]) {
							if it.Punct {
								return
							}
							mu.Lock()
							got[it.Result.Pair.Key()]++
							mu.Unlock()
						}
						eng, err := New(cfg)
						if err != nil {
							t.Fatal(err)
						}
						o := newOracleEngine(cfg, pc.pred)
						shardedSchedule(t, 900, uint64(shards*1000+batch), eng, o)

						missing, extra, dups := diffPairMultiset(o.pairs, got)
						if missing != 0 || extra != 0 || dups != 0 {
							t.Fatalf("sharded vs oracle: %d missing, %d extra, %d duplicates (oracle %d distinct, got %d distinct)",
								missing, extra, dups, len(o.pairs), len(got))
						}
						st := eng.Stats()
						if st.Results != sum(o.pairs) {
							t.Fatalf("Stats.Results = %d, oracle produced %d", st.Results, sum(o.pairs))
						}
						if st.PendingExpiries != 0 {
							t.Errorf("pending expiries: %d (duplicate or racing expiry)", st.PendingExpiries)
						}
					})
				}
			}
		}
	}
}

func sum(m map[stream.PairKey]int) uint64 {
	var n uint64
	for _, c := range m {
		n += uint64(c)
	}
	return n
}

func TestShardedOrderedExactSequence(t *testing.T) {
	// In Ordered mode the merged, punctuation-sorted output must be the
	// exact deterministic sequence — global timestamp order with
	// sequence-number tie-breaks — regardless of shard count.
	const step = int64(1e6)
	for _, shards := range []int{2, 4, 8} {
		for _, pc := range []struct {
			name string
			pred func(okR, okS) bool
		}{
			{"equi", shardedEqui},
			{"band-within-key", shardedBandWithinKey},
		} {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, pc.name), func(t *testing.T) {
				cfg := Config[okR, okS]{
					Workers:       3,
					Shards:        shards,
					Predicate:     pc.pred,
					WindowR:       Window{Duration: time.Duration(120 * step), Count: 200},
					WindowS:       Window{Duration: time.Duration(160 * step), Count: 200},
					Batch:         4,
					MaxInFlight:   2,
					Ordered:       true,
					CollectPeriod: 200 * time.Microsecond,
					KeyR:          okRKey,
					KeyS:          okSKey,
					// See TestShardedMatchesOracleExactly: the replica
					// oracle models the exact batch-flush schedule.
					Adapt: AdaptConfig{DisableHeartbeat: true},
				}
				var mu sync.Mutex
				var gotSeq []orderedKey
				puncts := 0
				cfg.OnOutput = func(it Item[okR, okS]) {
					mu.Lock()
					defer mu.Unlock()
					if it.Punct {
						puncts++
						return
					}
					p := it.Result.Pair
					gotSeq = append(gotSeq, orderedKey{TS: p.TS(), RSeq: p.R.Seq, SSeq: p.S.Seq})
				}
				eng, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := eng.(*ShardedEngine[okR, okS]); !ok {
					t.Fatalf("New with Shards=%d returned %T, want *ShardedEngine", shards, eng)
				}
				o := newOracleEngine(cfg, pc.pred)
				shardedSchedule(t, 900, uint64(shards*31), eng, o)

				want := o.orderedResults()
				if len(gotSeq) != len(want) {
					t.Fatalf("emitted %d results, oracle expects %d", len(gotSeq), len(want))
				}
				for i := range want {
					if gotSeq[i] != want[i] {
						t.Fatalf("position %d: got %+v, want %+v", i, gotSeq[i], want[i])
					}
				}
				if len(want) == 0 {
					t.Fatal("workload produced no results; test has no teeth")
				}
			})
		}
	}
}
