package handshakejoin

import (
	"fmt"
	"time"

	"handshakejoin/internal/collect"
	"handshakejoin/internal/core"
	"handshakejoin/internal/stream"
)

// Side identifies one of the two join inputs.
type Side = stream.Side

// Sides of the join.
const (
	R = stream.R
	S = stream.S
)

// Tuple is a stream element: payload plus sequence number and
// timestamps. Engines assign Seq; callers supply TS.
type Tuple[T any] = stream.Tuple[T]

// Pair is one join match.
type Pair[L, R any] = stream.Pair[L, R]

// Stamped couples a payload with its stream timestamp — the element of
// a batched push (Joiner.PushRBatch/PushSBatch).
type Stamped[T any] struct {
	Payload T
	TS      int64
}

// Result couples a match with its emission time.
type Result[L, R any] = core.Result[L, R]

// Item is one element of the engine output: a Result, or — when
// punctuation is enabled — a punctuation carrying the guarantee that no
// later result has a smaller timestamp.
type Item[L, R any] = collect.Item[L, R]

// Algorithm selects the join operator an Engine runs.
type Algorithm uint8

const (
	// LLHJ is low-latency handshake join (§4 of the paper) — the
	// default and the recommended operator.
	LLHJ Algorithm = iota
	// HSJ is the original handshake join (Teubner & Mueller, SIGMOD
	// 2011): same throughput and scaling, but latency proportional to
	// the window size and no punctuation support. Provided as the
	// paper's baseline.
	HSJ
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case LLHJ:
		return "low-latency handshake join"
	case HSJ:
		return "handshake join"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// IndexKind selects the node-local access path of LLHJ workers. The
// static kinds (ScanIndex, HashIndex, BTreeIndex) are explicit
// overrides fixed for the engine's lifetime; IndexAuto replaces the
// fixed choice with per-key-group runtime selection.
type IndexKind uint8

const (
	// ScanIndex scans node-local windows linearly (default).
	ScanIndex IndexKind = iota
	// HashIndex probes node-local hash tables on KeyR/KeyS — the
	// index acceleration of §7.6 (Table 2) for equi-join predicates.
	HashIndex
	// BTreeIndex probes node-local B-trees with the band
	// [key−Band, key+Band] — for band predicates on an integer key.
	BTreeIndex
	// IndexAuto makes probe strategy a per-(key-group, predicate-class)
	// runtime decision: each arrival's probe dispatches through a
	// strategy table that measures window cardinality and probe
	// selectivity per key-group and flips between scan, hash, and
	// B-tree range probes on sustained evidence (crossover model with
	// hysteresis). Requires KeyR/KeyS and a declared predicate Class;
	// node-local indexes are built lazily when a strategy first demands
	// them and dropped when no group uses them. See the "Probe
	// strategies" section of the package documentation.
	IndexAuto
)

// PredicateClass declares what the join predicate implies about the
// two tuples' keys — the license IndexAuto needs to narrow a probe to
// an index without losing matches. The predicate itself is always
// applied to candidates as a residual, so a class may safely
// under-promise (PredEqui with an extra value condition is fine);
// promising a relation the predicate does not imply loses matches.
type PredicateClass uint8

const (
	// PredOpaque promises nothing; every probe must scan.
	PredOpaque PredicateClass = iota
	// PredEqui promises matches have KeyR(r) == KeyS(s).
	PredEqui
	// PredBand promises matches have |KeyR(r) − KeyS(s)| <= Band.
	PredBand
	// PredLE promises matches have KeyR(r) <= KeyS(s).
	PredLE
	// PredGE promises matches have KeyR(r) >= KeyS(s).
	PredGE
)

// Window specifies one stream's sliding window. Duration and Count may
// be combined; a tuple leaves the window as soon as either bound is
// crossed.
type Window struct {
	// Duration keeps a tuple for this long after its timestamp.
	Duration time.Duration
	// Count keeps the last Count tuples.
	Count int
}

func (w Window) valid() bool { return w.Duration > 0 || w.Count > 0 }

// Config parameterizes an engine joining payloads of type L (stream R)
// and RT (stream S).
type Config[L, RT any] struct {
	// Algorithm selects the operator; default LLHJ.
	Algorithm Algorithm
	// Workers is the pipeline length in processing nodes (the paper's
	// "cores"). With Shards > 1 it is the length of each shard's
	// pipeline, so the total worker count is Shards*Workers. Default 4.
	Workers int
	// Shards > 1 hash-partitions both streams by join key across that
	// many independent LLHJ pipelines (see ShardedEngine). It requires
	// KeyR/KeyS and a predicate that implies key equality — tuples
	// whose keys differ are never compared, because they are routed to
	// (potentially) different shards. 0 or 1 selects the classic
	// single-pipeline Engine. LLHJ only.
	Shards int
	// Predicate is the join condition p(r, s). Required.
	Predicate func(L, RT) bool
	// WindowR and WindowS define the sliding windows. Required.
	WindowR Window
	// WindowS is the S-side window.
	WindowS Window
	// Batch is the driver batch size (the paper uses 64 by default and
	// evaluates 4 in §7.3.1; smaller batches mean lower latency).
	// Default 64.
	Batch int
	// Punctuate enables punctuation generation (LLHJ only).
	Punctuate bool
	// Ordered sorts the output by result timestamp using punctuations
	// (implies Punctuate; LLHJ only). Results are then delayed until
	// the next punctuation.
	Ordered bool
	// OnOutput receives every output item from the collector
	// goroutine. Required.
	OnOutput func(Item[L, RT])

	// Index selects the node-local access path (LLHJ only). The static
	// kinds are explicit overrides, fixed for the engine's lifetime;
	// IndexAuto selects per key-group at runtime and additionally
	// requires Class.
	Index IndexKind
	// Class declares the predicate's key relation for IndexAuto (it has
	// no effect with a static Index kind). Band/LE/GE classes get
	// B-tree range probes instead of full scans.
	Class PredicateClass
	// KeyR extracts the join key of an R payload (any non-scan Index).
	KeyR func(L) uint64
	// KeyS extracts the join key of an S payload.
	KeyS func(RT) uint64
	// Band is the half-width of the BTreeIndex key range probe, and of
	// PredBand range probes under IndexAuto.
	Band uint64

	// Adapt tunes the adaptive shard runtime (ShardedEngine only):
	// idle-shard heartbeats and, when enabled, skew-aware key-group
	// rebalancing. The zero value keeps heartbeats on and rebalancing
	// off.
	Adapt AdaptConfig

	// Obs opts the engine into the live observability layer: an HTTP
	// metrics/pprof endpoint and a control-plane event trace. The zero
	// value disables both; see ObsConfig.
	Obs ObsConfig

	// Durability opts the engine into crash recovery: a write-ahead log
	// of admitted batches plus consistent checkpoints, restored through
	// Joiner.Restore. The zero value disables it; see Durability.
	Durability Durability[L, RT]

	// MaxLiveTuples, when > 0, bounds the engine's live window
	// footprint: a push that would lift the total in-window tuple count
	// (both sides, all shards) above the bound is rejected with
	// ErrOverloaded before it reaches the WAL or any engine state, and
	// Health().Overloaded is set until admission succeeds again. The
	// bound is enforced within the pipeline's in-flight volume (tuples
	// admitted but not yet published by their node are counted against
	// it conservatively). 0 disables admission control.
	MaxLiveTuples int

	// CollectPeriod is how often the collector vacuums the result
	// queues (and punctuates). Default 1ms.
	CollectPeriod time.Duration
	// MaxInFlight bounds the number of messages in flight inside the
	// pipeline; Push blocks when it is reached. It must stay far below
	// the window sizes in tuples (window semantics are defined at the
	// pipeline entries, so an in-flight volume approaching the window
	// length blurs the window boundary). Default 16.
	MaxInFlight int
	// ExpectedRate, in tuples/second/stream, sizes the original
	// handshake join's window segments for Duration windows (the
	// pipeline-as-window model needs a tuple capacity). Ignored by
	// LLHJ. Default 1000.
	ExpectedRate float64
}

// AdaptConfig tunes the adaptive shard runtime of a ShardedEngine.
//
// The runtime has two independent parts. Idle-shard heartbeats (on by
// default) let a shard that received no tuples for a collect period
// promise the engine-wide ingress floor, so the merged punctuation —
// and with it Ordered-mode output — keeps flowing when one shard's key
// range goes quiet. Skew-aware rebalancing (off by default, Enable)
// samples per-key-group load on SamplePeriod, plans key-group moves
// off overloaded shards, and cuts each move over only once the group
// provably has no joinable window state left on its old shard, so the
// result multiset — and the exact Ordered-mode sequence — is the same
// as if the move had never happened.
type AdaptConfig struct {
	// Enable turns on skew-aware key-group rebalancing.
	Enable bool
	// SamplePeriod is the control-loop cadence. Default 2ms. A
	// negative period disables the background loop; rebalancing then
	// runs only when ShardedEngine.Rebalance is called.
	SamplePeriod time.Duration
	// SkewThreshold is the max/mean per-shard load ratio above which
	// the planner starts moving key-groups. Default 1.25.
	SkewThreshold float64
	// MaxMovesPerCycle bounds the group moves proposed per control
	// cycle. Default Shards.
	MaxMovesPerCycle int
	// StaleMoveCycles is how many control cycles a proposed move may
	// wait for its safe cut-over before it is cancelled. It should
	// comfortably exceed the window residence time of a tuple measured
	// in control cycles, or moves are cancelled before their group
	// could possibly drain. Default 64.
	StaleMoveCycles int
	// EngageThreshold is the smoothed shard-imbalance watermark at
	// which the controller starts planning. Default SkewThreshold.
	EngageThreshold float64
	// DisengageRatio positions the low hysteresis watermark between 1
	// (perfect balance) and EngageThreshold: planning goes quiet below
	// 1 + (EngageThreshold-1)*DisengageRatio. Must be in (0, 1];
	// default 0.5.
	DisengageRatio float64
	// Migration tunes live key-group state migration, the second
	// rebalancing path for groups whose windows never drain.
	Migration MigrationConfig
	// KeyGroups is the size of the key-group indirection table the
	// router partitions through. More groups move load in finer slices
	// at slightly more bookkeeping. Default 64 per shard (bounded to
	// 64..4096); must be >= Shards when set.
	KeyGroups int
	// HeartbeatPeriod overrides the idle-shard heartbeat cadence.
	// Default CollectPeriod.
	HeartbeatPeriod time.Duration
	// StallWatchdog, when > 0, arms a watchdog on the heartbeat loop:
	// if the merged punctuation floor fails to advance for this long
	// while ingress is ahead of it, Health().FloorStalled is set and a
	// floor_stalled trace event fires (edge-triggered; floor_recovered
	// when it moves again). Ordered-mode output visibly stuck is
	// exactly this condition. Requires heartbeats (the default) and
	// Punctuate (without punctuations there is no floor to watch); 0
	// disables the watchdog.
	StallWatchdog time.Duration
	// DisableHeartbeat turns idle-shard heartbeats off, restoring the
	// PR-1 behaviour in which a quiet shard holds back the merged
	// punctuation floor until Close.
	DisableHeartbeat bool
}

// MigrationConfig tunes live key-group state migration (ShardedEngine
// with Adapt.Enable). The drain-based cut-over can never move a
// continuously hot key-group — its window always holds fresh tuples —
// so the runtime escalates long-stalled moves to a migration.
//
// The default escalation is incremental (slice) migration: a handoff
// commits the group's route to the new shard — new arrivals land there
// as ordinary full arrivals, and until the handoff finishes each of
// the group's arrivals is duplicated as a probe-only read to the old
// shard, so pairs against the not-yet-moved window state are still
// found exactly once — and the group's window tuples then move in
// bounded slices, oldest first, each hop freezing ingress only for one
// slice plus the pipeline's in-flight cap. Setting Freezing restores
// the all-or-nothing escalation: the whole group moves under a single
// frozen consistent cut, refused when it exceeds the cycle budget.
// Either way the result multiset and the Ordered-mode sequence are
// exactly as if the group had always lived on its new shard; see the
// package documentation for the safety argument.
type MigrationConfig struct {
	// Enable turns migration escalation on.
	Enable bool
	// MaxTuplesPerCycle is the tuple budget one control cycle may
	// migrate. Incremental migration spends it across slice hops; the
	// freezing path refuses a group whose live state exceeds it
	// (before any state is touched). Default 4096.
	MaxTuplesPerCycle int
	// AfterCycles is how many control cycles a planned move must have
	// stalled before it escalates to a migration. Keep it well below
	// Adapt.StaleMoveCycles, or intents are cancelled before they can
	// escalate. Default 4.
	AfterCycles int
	// MinGroupLoad is the per-cycle load EWMA above which a stalled
	// group counts as never-draining and worth migrating; colder
	// groups drain on their own eventually. Default 1.
	MinGroupLoad float64
	// SliceTuples bounds one slice hop of an incremental migration —
	// the longest single ingress freeze a handoff may cost, in window
	// tuples. Default 1024. Ignored with Freezing.
	SliceTuples int
	// MinGapRatio is a noise floor on the escalation gap check: a
	// stalled group migrates only when the donor/receiver load gap
	// also exceeds MinGapRatio times the mean shard load. Under heavy
	// skew the steady-state sample jitters around the unsplittable hot
	// groups; without a floor that jitter reads as an actionable gap
	// and migrations churn forever. 0 disables the floor.
	MinGapRatio float64
	// MaxMigrationsPerSec rate-limits migration starts (burst one);
	// 0 means unlimited. The churn cap for skew the noise floor does
	// not catch.
	MaxMigrationsPerSec float64
	// Freezing selects the all-or-nothing escalation path instead of
	// incremental slices: a stalled group moves in one freezing
	// extract under MaxTuplesPerCycle, stalling the source shard's
	// ingress for the whole copy.
	Freezing bool
}

func (c *Config[L, RT]) validate() error {
	if c.Predicate == nil {
		return fmt.Errorf("handshakejoin: Predicate is required")
	}
	if c.OnOutput == nil {
		return fmt.Errorf("handshakejoin: OnOutput is required")
	}
	if !c.WindowR.valid() || !c.WindowS.valid() {
		return fmt.Errorf("handshakejoin: both windows need a Duration or Count bound")
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Workers < 1 {
		return fmt.Errorf("handshakejoin: Workers must be >= 1, got %d", c.Workers)
	}
	if c.Batch == 0 {
		c.Batch = 64
	}
	if c.Batch < 1 {
		return fmt.Errorf("handshakejoin: Batch must be >= 1, got %d", c.Batch)
	}
	if c.CollectPeriod == 0 {
		c.CollectPeriod = time.Millisecond
	}
	if c.ExpectedRate == 0 {
		c.ExpectedRate = 1000
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 16
	}
	if c.MaxInFlight < 1 {
		return fmt.Errorf("handshakejoin: MaxInFlight must be >= 1, got %d", c.MaxInFlight)
	}
	if c.Algorithm == HSJ && (c.Punctuate || c.Ordered || c.Index != ScanIndex) {
		return fmt.Errorf("handshakejoin: punctuation, ordering and indexes require the LLHJ algorithm")
	}
	if c.Index != ScanIndex && (c.KeyR == nil || c.KeyS == nil) {
		return fmt.Errorf("handshakejoin: Index requires KeyR and KeyS")
	}
	if c.Index == IndexAuto && c.Class == PredOpaque {
		return fmt.Errorf("handshakejoin: IndexAuto requires a declared predicate Class")
	}
	if c.Index > IndexAuto {
		return fmt.Errorf("handshakejoin: unknown Index kind %d", c.Index)
	}
	if c.Shards < 0 {
		return fmt.Errorf("handshakejoin: Shards must be >= 0, got %d", c.Shards)
	}
	if c.Shards > 1 {
		if c.Algorithm != LLHJ {
			return fmt.Errorf("handshakejoin: sharding requires the LLHJ algorithm")
		}
		if c.KeyR == nil || c.KeyS == nil {
			return fmt.Errorf("handshakejoin: Shards > 1 requires KeyR and KeyS")
		}
		if c.Class == PredBand || c.Class == PredLE || c.Class == PredGE {
			// Hash routing sends the two sides of a match to the same
			// shard only when their keys are equal; range classes would
			// silently lose cross-shard matches.
			return fmt.Errorf("handshakejoin: Shards > 1 requires key equality; Class %d implies range matches across shards", c.Class)
		}
		if c.Adapt.KeyGroups != 0 && c.Adapt.KeyGroups < c.Shards {
			return fmt.Errorf("handshakejoin: Adapt.KeyGroups (%d) must be >= Shards (%d)", c.Adapt.KeyGroups, c.Shards)
		}
	}
	if c.Adapt.Enable && c.Shards <= 1 {
		return fmt.Errorf("handshakejoin: Adapt.Enable requires Shards > 1")
	}
	if c.Adapt.SkewThreshold != 0 && c.Adapt.SkewThreshold < 1 {
		return fmt.Errorf("handshakejoin: Adapt.SkewThreshold must be >= 1, got %g", c.Adapt.SkewThreshold)
	}
	if c.Adapt.EngageThreshold != 0 && c.Adapt.EngageThreshold < 1 {
		return fmt.Errorf("handshakejoin: Adapt.EngageThreshold must be >= 1, got %g", c.Adapt.EngageThreshold)
	}
	if c.Adapt.DisengageRatio != 0 && (c.Adapt.DisengageRatio < 0 || c.Adapt.DisengageRatio > 1) {
		return fmt.Errorf("handshakejoin: Adapt.DisengageRatio must be in (0, 1], got %g", c.Adapt.DisengageRatio)
	}
	if c.Adapt.Migration.Enable && !c.Adapt.Enable {
		return fmt.Errorf("handshakejoin: Adapt.Migration.Enable requires Adapt.Enable")
	}
	if c.Adapt.Migration.MaxTuplesPerCycle < 0 || c.Adapt.Migration.AfterCycles < 0 || c.Adapt.Migration.MinGroupLoad < 0 ||
		c.Adapt.Migration.SliceTuples < 0 || c.Adapt.Migration.MinGapRatio < 0 || c.Adapt.Migration.MaxMigrationsPerSec < 0 {
		return fmt.Errorf("handshakejoin: Adapt.Migration knobs must be >= 0")
	}
	if c.MaxLiveTuples < 0 {
		return fmt.Errorf("handshakejoin: MaxLiveTuples must be >= 0, got %d", c.MaxLiveTuples)
	}
	if c.Adapt.StallWatchdog < 0 {
		return fmt.Errorf("handshakejoin: Adapt.StallWatchdog must be >= 0, got %v", c.Adapt.StallWatchdog)
	}
	if c.Durability.enabled() {
		if c.Algorithm != LLHJ {
			return fmt.Errorf("handshakejoin: Durability requires the LLHJ algorithm")
		}
		if c.Durability.EncodeR == nil || c.Durability.DecodeR == nil ||
			c.Durability.EncodeS == nil || c.Durability.DecodeS == nil {
			return fmt.Errorf("handshakejoin: Durability.WALDir requires EncodeR/DecodeR/EncodeS/DecodeS")
		}
		if c.Durability.CheckpointEveryBatches < 0 {
			return fmt.Errorf("handshakejoin: Durability.CheckpointEveryBatches must be >= 0, got %d", c.Durability.CheckpointEveryBatches)
		}
	}
	if c.Ordered {
		c.Punctuate = true
	}
	return nil
}

// Joiner is the driver interface shared by the single-pipeline Engine
// and the hash-sharded ShardedEngine; New returns whichever Config
// selects. Push tuples in non-decreasing timestamp order per stream;
// results (and, when enabled, punctuations) arrive on the OnOutput
// callback.
type Joiner[L, RT any] interface {
	// PushR submits an R tuple with the given timestamp (nanoseconds,
	// any monotonic origin).
	PushR(payload L, ts int64) error
	// PushS submits an S tuple.
	PushS(payload RT, ts int64) error
	// PushRBatch submits a batch of R tuples in non-decreasing
	// timestamp order under one driver admission — one serial section,
	// one routing pass, one expiry-schedule pass, and (sharded) one
	// gate ticket and one bulk hand-off per destination shard —
	// amortizing the per-tuple ingress cost. It is semantically
	// equivalent to calling PushR for each element in order: the same
	// results, and in Ordered mode the same exact sequence. A timestamp
	// regression anywhere in the batch rejects the whole batch before
	// any state changes. The batch slice is copied and may be reused by
	// the caller immediately.
	PushRBatch(batch []Stamped[L]) error
	// PushSBatch submits a batch of S tuples; see PushRBatch.
	PushSBatch(batch []Stamped[RT]) error
	// Tick advances stream time without submitting a tuple, so windows
	// keep sliding on idle streams.
	Tick(ts int64)
	// Checkpoint writes a consistent snapshot of all engine state —
	// window tuples, pending expiries, partial batch buffers, the
	// routing table, and the ordered-output buffer — into
	// <dir>/checkpoint (dir "" selects Durability.WALDir), then
	// truncates WAL segments the snapshot has made redundant. Requires
	// Durability.WALDir. The engine is briefly quiesced but not
	// restarted: ingress resumes as soon as the cut is captured, with
	// the file writes happening off the ingress path. Single-pipeline
	// engines must call it from the driver goroutine; sharded engines
	// accept it from any goroutine.
	Checkpoint(dir string) error
	// Restore loads the checkpoint under dir into a freshly built
	// engine with an identical configuration (window specs, shards,
	// workers, batch, ordering — enforced by fingerprint) and replays
	// the WAL records logged after the cut through the ordinary push
	// paths. The engine must not have admitted anything yet, and the
	// caller must not push concurrently with Restore. See the package
	// documentation's Durability section for the recovery contract.
	Restore(dir string) error
	// Close flushes, stops all goroutines and releases remaining
	// ordered output.
	Close() error
	// Stats returns run counters. Safe to call mid-run from any
	// goroutine: every counter is read atomically, so the view lags
	// the pushers by at most the in-flight batches and is exact once
	// the engine is closed.
	Stats() Stats
	// StatsSnapshot returns Stats plus the live gauges of the
	// observability layer (punctuation-floor lag, per-shard window
	// footprints, expiry backlog, in-flight handoffs). Same mid-run
	// safety as Stats.
	StatsSnapshot() Snapshot
	// Health returns the engine's degradation flags — WAL failure or
	// shed, overload rejection, stalled punctuation floor. Safe to
	// call mid-run from any goroutine; the zero value means healthy.
	Health() Health
	// Events drains the control-plane trace events with sequence
	// number >= since that are still inside the bounded ring, oldest
	// first. Nil when tracing is disabled (see ObsConfig).
	Events(since uint64) []TraceEvent
	// ObsAddr returns the bound address of the observability HTTP
	// endpoint, or "" when it is disabled.
	ObsAddr() string
}

// New builds and starts the engine selected by cfg: a single-pipeline
// Engine, or — when cfg.Shards > 1 — a ShardedEngine fanning out over
// hash-partitioned pipelines.
func New[L, RT any](cfg Config[L, RT]) (Joiner[L, RT], error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		return newSharded(cfg)
	}
	return newEngine(cfg)
}

// Stats summarizes an engine run.
type Stats struct {
	// RIn and SIn count pushed tuples.
	RIn, SIn uint64
	// Results counts emitted matches.
	Results uint64
	// Punctuations counts emitted punctuations.
	Punctuations uint64
	// Comparisons counts window entries inspected across all workers.
	Comparisons uint64
	// ProbeScan, ProbeHash and ProbeBTree count window probes by the
	// access path actually taken — the strategy mix. Under a static
	// Index exactly one of them moves; under IndexAuto their sum equals
	// the total probe count, so a mid-run scrape can check conservation.
	ProbeScan, ProbeHash, ProbeBTree uint64
	// StrategySwitches counts per-key-group probe-strategy flips
	// applied by IndexAuto's crossover model (plus any forced flips).
	StrategySwitches uint64
	// MaxSortBuffer is the ordered-output buffer high-water mark
	// (meaningful with Ordered; the quantity of Figure 21).
	MaxSortBuffer int
	// PendingExpiries counts expiry messages that raced ahead of their
	// tuple; non-zero values indicate the window is shorter than the
	// pipeline transit time.
	PendingExpiries uint64
	// ShardResults counts results per shard (ShardedEngine only; nil
	// for single-pipeline engines). Skew across entries reveals key
	// distributions the partitioner cannot balance.
	ShardResults []uint64
	// ShardIngress counts tuples routed to each shard (ShardedEngine
	// only) — the load-balance view of the routing table. Compare
	// max/mean across entries (metrics.Imbalance) before and after
	// enabling Adapt to see what rebalancing recovered.
	ShardIngress []uint64
	// Rebalances counts control cycles that proposed key-group moves
	// (ShardedEngine with Adapt.Enable only).
	Rebalances uint64
	// KeyGroupMoves counts key-group cut-overs actually applied
	// through the drain path (the group had no joinable state left).
	KeyGroupMoves uint64
	// StateMigrations counts completed live key-group state
	// migrations: moves executed by extracting the group's window
	// state and replaying it on the new shard as store-only arrivals
	// (Adapt.Migration escalation, explicit ShardedEngine.Migrate
	// calls, or finished incremental handoffs).
	StateMigrations uint64
	// MigratedTuples counts window tuples carried by state migrations.
	MigratedTuples uint64
	// SliceMigrations counts bounded slice hops performed by
	// incremental migrations; each moved at most
	// Adapt.Migration.SliceTuples window tuples while both lanes
	// stayed live.
	SliceMigrations uint64
	// SourceFreezeStalls counts migration operations that froze
	// ingress to extract a whole group from its source shard in one
	// cut (the freezing Migrate path). Incremental slice migration
	// performs none: its per-hop stall is bounded by the slice size
	// plus the pipeline's in-flight cap, never by the group's window
	// footprint.
	SourceFreezeStalls uint64
	// MaxMigrationStallNs is the longest single ingress freeze any
	// migration operation held, in nanoseconds (freezing extracts and
	// slice hops alike).
	MaxMigrationStallNs int64
	// StoreSpills counts whole-ring directory spills into the window
	// stores' overflow maps (a seq burst after a long idle).
	StoreSpills uint64
	// StoreReanchors counts below-base ring re-anchors (migration
	// injected state older than the destination window's base).
	StoreReanchors uint64
	// StoreCompactions counts window entry-slab compactions.
	StoreCompactions uint64
	// StoreParks counts entries parked in window overflow maps — the
	// stores' cold tier; sustained growth marks a pathological seq
	// pattern.
	StoreParks uint64
	// StoreOverflow is the current number of entries across all window
	// overflow maps (a gauge, exact when quiescent).
	StoreOverflow int
	// WALRetries counts in-line WAL append and checkpoint-write retry
	// attempts the durability layer's recovery loop performed;
	// non-zero values mean the disk faulted but the fault was ridden
	// out (or escalated to the OnError policy).
	WALRetries uint64
	// WALSheds counts transitions into the degraded (shed) durability
	// state under DurDegrade.
	WALSheds uint64
	// AdmissionRejects counts pushes rejected with ErrOverloaded
	// against Config.MaxLiveTuples.
	AdmissionRejects uint64
}
