package handshakejoin

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"handshakejoin/internal/fault"
	"handshakejoin/internal/workload"
)

// The tests in this file extend the kill/restore oracle of
// durability_test.go with injected disk faults: instead of killing the
// durable run at a precomputed boundary, a seeded fault plan makes the
// disk fail mid-schedule — a dead fsync, ENOSPC, a torn write — and
// the point where the failure surfaces (a failing push under DurFail)
// becomes the crash. The recovery contract is unchanged and exact: the
// killed run's output below the checkpoint floor plus the restored
// run's output is the uninterrupted reference sequence. The DurDegrade
// tests check the opposite promise: the engine keeps serving exactly,
// flags the shed through Health, and a checkpoint to a healthy
// directory re-arms logging with full recoverability.

// applyDurOpErr applies one schedule op and returns the push error
// instead of failing the test — chaos runs expect pushes to fail.
func applyDurOpErr(eng Joiner[okR, okS], op durOp) error {
	switch op.kind {
	case 'r':
		return eng.PushR(op.r, op.ts)
	case 's':
		return eng.PushS(op.s, op.ts)
	case 't':
		eng.Tick(op.ts)
	}
	return nil
}

// chaosBase builds the shared oracle configuration (identical driver
// schedule semantics to runKillRestore).
func chaosBase(rnd *workload.Rand, shards, batch int, handoff bool) Config[okR, okS] {
	base := Config[okR, okS]{
		Workers:       1 + rnd.Intn(3),
		Shards:        shards,
		Predicate:     shardedEqui,
		WindowR:       Window{Duration: 150 * time.Millisecond, Count: 200},
		WindowS:       Window{Duration: 130 * time.Millisecond},
		Batch:         batch,
		MaxInFlight:   2,
		KeyR:          okRKey,
		KeyS:          okSKey,
		Ordered:       true,
		CollectPeriod: 200 * time.Microsecond,
		Adapt:         AdaptConfig{DisableHeartbeat: true},
	}
	if handoff {
		base.Adapt = AdaptConfig{
			Enable:           true,
			SamplePeriod:     -1, // the schedule is the only control driver
			SkewThreshold:    1.05,
			MaxMovesPerCycle: 16,
			KeyGroups:        8 * shards,
			Migration:        MigrationConfig{SliceTuples: 16},
			DisableHeartbeat: true,
		}
	}
	return base
}

// chaosDurability is the oracle's durability shape: sync-blocking with
// a per-record fsync, so a disk fault surfaces on the failing push
// itself and acknowledged == durable exactly.
func chaosDurability(dir string, fs fault.FS) Durability[okR, okS] {
	d := okCodecs(dir, 1, 0)
	d.SyncBlocking = true
	d.SegmentBytes = 4096 // rotate often: faults land on rotation paths too
	d.RetryAttempts = 2
	d.RetryBackoff = 50 * time.Microsecond
	d.FS = fs
	return d
}

// runChaosOracle drives the fault-kill oracle for one fault rule: a
// reference run, a durable run whose disk dies mid-schedule (the first
// failing push is the crash point), and a restored run on a clean
// filesystem completing the schedule; then checks the recovery
// contract exactly.
func runChaosOracle(t *testing.T, seed uint64, shards, batch int, handoff bool, mkRule func(walDir string) fault.Rule) {
	t.Helper()
	ops := buildDurOps(seed, 1200)
	rnd := workload.NewRand(seed ^ 0xFA17)
	base := chaosBase(rnd, shards, batch, handoff)
	ckptAt := len(ops) / 4

	// Reference: the same schedule, uninterrupted, without durability.
	var want durOut
	refCfg := base
	refCfg.OnOutput = want.cb
	ref, err := New(refCfg)
	if err != nil {
		t.Fatalf("seed %d: reference engine: %v", seed, err)
	}
	for _, op := range ops {
		applyDurOp(t, ref, op)
	}
	if err := ref.Close(); err != nil {
		t.Fatalf("seed %d: reference close: %v", seed, err)
	}

	// Chaos run: durable, DurFail, fault plan armed on the WAL files.
	dir := t.TempDir()
	rule := mkRule(filepath.Join(dir, "wal") + string(filepath.Separator))
	plan := fault.NewPlan(rule)
	var outB durOut
	cfgB := base
	cfgB.OnOutput = outB.cb
	cfgB.Durability = chaosDurability(dir, fault.Inject(nil, plan))
	engB, err := New(cfgB)
	if err != nil {
		t.Fatalf("seed %d: durable engine: %v", seed, err)
	}
	var hg uint32
	killAt := -1
	for i, op := range ops {
		err := applyDurOpErr(engB, op)
		if err == nil && !engB.Health().WALFailed {
			if i == ckptAt {
				if handoff {
					se := engB.(*ShardedEngine[okR, okS])
					hg = uint32(rnd.Intn(se.KeyGroups()))
					from := se.router.Partitioner().ShardOfGroup(hg)
					to := (from + 1) % shards
					if err := se.BeginMigration(hg, to); err != nil {
						t.Fatalf("seed %d: BeginMigration(%d, %d): %v", seed, hg, to, err)
					}
				}
				// Cut a checkpoint before the disk dies (with the handoff
				// held open, so the restored router must carry it across
				// the fault).
				if err := engB.Checkpoint(""); err != nil {
					t.Fatalf("seed %d: Checkpoint: %v", seed, err)
				}
			}
			continue
		}
		// The crash point: either the push failed (its record was taken
		// back), or a Tick hit the fault (its record never landed and
		// Tick cannot report it — Health does). Either way ops[i:] are
		// not in the log and the restored run must re-apply them.
		if err != nil && !errors.Is(err, rule.Err) {
			t.Fatalf("seed %d: push failed with %v, want the injected %v", seed, err, rule.Err)
		}
		killAt = i
		break
	}
	if killAt < 0 {
		t.Fatalf("seed %d: fault plan never surfaced a failure (injections=%d)", seed, plan.Injections())
	}
	if killAt <= ckptAt {
		t.Fatalf("seed %d: fault fired at op %d, before the checkpoint at %d", seed, killAt, ckptAt)
	}
	if plan.Injections() == 0 {
		t.Fatalf("seed %d: kill without an injection, log: %v", seed, plan.Log())
	}
	if !engB.Health().WALFailed {
		t.Fatalf("seed %d: push failed but Health().WALFailed is false", seed)
	}
	// DurFail is sticky: the next push must fail too.
	for _, op := range ops[killAt:] {
		if op.kind == 't' {
			continue
		}
		if err := applyDurOpErr(engB, op); err == nil {
			t.Fatalf("seed %d: push after a permanent WAL failure succeeded", seed)
		}
		break
	}
	killLen := outB.len()
	engB.Close() //nolint:errcheck // the log is on a dead disk; Close is best-effort

	st, err := CheckpointInfo(dir)
	if err != nil {
		t.Fatalf("seed %d: no checkpoint committed before the kill: %v", seed, err)
	}

	// Restored run: clean filesystem, same directory, rest of the
	// schedule.
	var outC durOut
	cfgC := cfgB
	cfgC.OnOutput = outC.cb
	cfgC.Durability.FS = nil
	engC, err := New(cfgC)
	if err != nil {
		t.Fatalf("seed %d: restored engine: %v", seed, err)
	}
	if err := engC.Restore(""); err != nil {
		t.Fatalf("seed %d: Restore: %v", seed, err)
	}
	if handoff {
		se := engC.(*ShardedEngine[okR, okS])
		if !se.router.InHandoff(hg) {
			t.Fatalf("seed %d: restored engine lost the open handoff of group %d", seed, hg)
		}
	}
	for _, op := range ops[killAt:] {
		applyDurOp(t, engC, op)
	}
	if handoff {
		se := engC.(*ShardedEngine[okR, okS])
		for {
			_, done, err := se.AdvanceMigration(hg)
			if err != nil {
				t.Fatalf("seed %d: AdvanceMigration(%d): %v", seed, hg, err)
			}
			if done {
				break
			}
		}
	}
	if err := engC.Close(); err != nil {
		t.Fatalf("seed %d: restored close: %v", seed, err)
	}

	var combined []orderedKey
	for _, k := range outB.snap()[:killLen] {
		if k.TS < st.LastPunct {
			combined = append(combined, k)
		}
	}
	combined = append(combined, outC.snap()...)
	wantSeq := want.snap()
	if len(combined) != len(wantSeq) {
		t.Fatalf("seed %d (shards=%d batch=%d handoff=%v killAt=%d floor=%d injections=%d): recovered %d results, reference emitted %d",
			seed, shards, batch, handoff, killAt, st.LastPunct, plan.Injections(), len(combined), len(wantSeq))
	}
	for i := range wantSeq {
		if combined[i] != wantSeq[i] {
			t.Fatalf("seed %d (shards=%d batch=%d handoff=%v): position %d: got %+v, want %+v",
				seed, shards, batch, handoff, i, combined[i], wantSeq[i])
		}
	}
}

// TestChaosOracle is the fault-kill acceptance matrix: shard counts 1,
// 4 and 8, three disk-failure modes, and — sharded — a handoff held
// open across the fault. The Nth counts place every fault well past
// the op-300 checkpoint; the kill point itself is detected, not
// assumed.
func TestChaosOracle(t *testing.T) {
	fsyncDead := func(walDir string) fault.Rule {
		return fault.Rule{Op: fault.OpSync, Path: walDir, Nth: 700, Repeat: true, Err: fault.ErrInjected}
	}
	enospc := func(walDir string) fault.Rule {
		return fault.Rule{Op: fault.OpWrite, Path: walDir, Nth: 700, Repeat: true, Err: syscall.ENOSPC}
	}
	torn := func(walDir string) fault.Rule {
		return fault.Rule{Op: fault.OpWrite, Path: walDir, Nth: 700, Repeat: true, TornBytes: 9, Err: syscall.EIO}
	}
	cases := []struct {
		name    string
		shards  int
		batch   int
		handoff bool
		rule    func(string) fault.Rule
	}{
		{"shards=1/fsync", 1, 1, false, fsyncDead},
		{"shards=1/enospc", 1, 1, false, enospc},
		{"shards=1/torn/batch=3", 1, 3, false, torn},
		{"shards=4/fsync/handoff", 4, 1, true, fsyncDead},
		{"shards=4/torn", 4, 3, false, torn},
		{"shards=8/enospc/handoff", 8, 1, true, enospc},
	}
	for i, tc := range cases {
		tc := tc
		seed := uint64(0xC405 + i*6151)
		t.Run(tc.name, func(t *testing.T) {
			runChaosOracle(t, seed, tc.shards, tc.batch, tc.handoff, tc.rule)
		})
	}
}

// TestChaosRotationFaultKeepsServing: a dead segment-create (ENOSPC at
// rotation) is not fatal — the active segment keeps accepting durable
// appends, every push succeeds, Health stays Ok, and recovery from the
// over-full segment is exact.
func TestChaosRotationFaultKeepsServing(t *testing.T) {
	seed := uint64(0xA0BE)
	ops := buildDurOps(seed, 1200)
	rnd := workload.NewRand(seed ^ 0xFA17)
	base := chaosBase(rnd, 4, 1, false)
	ckptAt, killAt := len(ops)/4, 3*len(ops)/4

	var want durOut
	refCfg := base
	refCfg.OnOutput = want.cb
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		applyDurOp(t, ref, op)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal") + string(filepath.Separator)
	plan := fault.NewPlan(fault.Rule{Op: fault.OpCreate, Path: walDir, Nth: 3, Repeat: true, Err: syscall.ENOSPC})
	var outB durOut
	cfgB := base
	cfgB.OnOutput = outB.cb
	cfgB.Durability = chaosDurability(dir, fault.Inject(nil, plan))
	cfgB.Durability.SegmentBytes = 2048
	engB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops[:killAt] {
		if err := applyDurOpErr(engB, op); err != nil {
			t.Fatalf("op %d: push failed under a rotation-only fault: %v", i, err)
		}
		if i == ckptAt {
			if err := engB.Checkpoint(""); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	if plan.Injections() == 0 {
		t.Fatal("the rotation fault never fired")
	}
	if h := engB.Health(); !h.Ok() {
		t.Fatalf("Health = %s under a survivable rotation fault, want ok", h)
	}
	killLen := outB.len()
	engB.Close() //nolint:errcheck

	st, err := CheckpointInfo(dir)
	if err != nil {
		t.Fatal(err)
	}
	var outC durOut
	cfgC := cfgB
	cfgC.OnOutput = outC.cb
	cfgC.Durability.FS = nil
	engC, err := New(cfgC)
	if err != nil {
		t.Fatal(err)
	}
	if err := engC.Restore(""); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for _, op := range ops[killAt:] {
		applyDurOp(t, engC, op)
	}
	if err := engC.Close(); err != nil {
		t.Fatal(err)
	}

	var combined []orderedKey
	for _, k := range outB.snap()[:killLen] {
		if k.TS < st.LastPunct {
			combined = append(combined, k)
		}
	}
	combined = append(combined, outC.snap()...)
	wantSeq := want.snap()
	if len(combined) != len(wantSeq) {
		t.Fatalf("recovered %d results, reference emitted %d (injections=%d)", len(combined), len(wantSeq), plan.Injections())
	}
	for i := range wantSeq {
		if combined[i] != wantSeq[i] {
			t.Fatalf("position %d: got %+v, want %+v", i, combined[i], wantSeq[i])
		}
	}
}

// runChaosDegrade drives the DurDegrade contract: a persistent fsync
// fault sheds durability instead of failing pushes; the live run stays
// exact, Health and the trace report the shed, and a Checkpoint to a
// healthy directory re-arms logging so a crash after it recovers
// exactly from the new root.
func runChaosDegrade(t *testing.T, seed uint64, shards int) {
	t.Helper()
	ops := buildDurOps(seed, 1200)
	rnd := workload.NewRand(seed ^ 0xFA17)
	base := chaosBase(rnd, shards, 1, false)
	rearmAt := 3 * len(ops) / 4

	var want durOut
	refCfg := base
	refCfg.OnOutput = want.cb
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		applyDurOp(t, ref, op)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	dir1, dir2 := t.TempDir(), t.TempDir()
	wal1 := filepath.Join(dir1, "wal") + string(filepath.Separator)
	plan := fault.NewPlan(fault.Rule{Op: fault.OpSync, Path: wal1, Nth: 400, Repeat: true, Err: fault.ErrInjected})
	var outB durOut
	cfgB := base
	cfgB.OnOutput = outB.cb
	cfgB.Obs = ObsConfig{EventBuffer: 512}
	cfgB.Durability = chaosDurability(dir1, fault.Inject(nil, plan))
	cfgB.Durability.OnError = DurDegrade
	engB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	shedAt := -1
	for i, op := range ops {
		if err := applyDurOpErr(engB, op); err != nil {
			t.Fatalf("op %d: DurDegrade push failed: %v", i, err)
		}
		if shedAt < 0 && engB.Health().WALFailed {
			shedAt = i
		}
		if i == rearmAt {
			if shedAt < 0 {
				t.Fatalf("fault never shed durability by op %d (injections=%d)", i, plan.Injections())
			}
			// Re-arm onto the healthy directory: the checkpoint captures
			// everything served so far, the fresh log takes over from it.
			if err := engB.Checkpoint(dir2); err != nil {
				t.Fatalf("Checkpoint(%s): %v", dir2, err)
			}
			if h := engB.Health(); h.WALFailed {
				t.Fatalf("Health = %s after a successful re-arm, want ok", h)
			}
		}
	}
	stats := engB.Stats()
	if stats.WALSheds != 1 {
		t.Fatalf("Stats().WALSheds = %d, want 1", stats.WALSheds)
	}
	if stats.WALRetries == 0 {
		t.Fatal("Stats().WALRetries = 0: the shed should have cost retry attempts")
	}
	kinds := map[string]int{}
	for _, ev := range engB.Events(0) {
		kinds[ev.Kind]++
	}
	if kinds["wal_degraded"] != 1 || kinds["wal_rearmed"] != 1 {
		t.Fatalf("trace events = %v, want one wal_degraded and one wal_rearmed", kinds)
	}
	killLen := outB.len()
	if err := engB.Close(); err != nil {
		t.Fatalf("degraded close: %v", err)
	}

	// The live run must be exact end to end — shedding durability never
	// perturbs serving.
	liveSeq, wantSeq := outB.snap(), want.snap()
	if len(liveSeq) != len(wantSeq) {
		t.Fatalf("degraded run emitted %d results, reference %d (shedAt=%d)", len(liveSeq), len(wantSeq), shedAt)
	}
	for i := range wantSeq {
		if liveSeq[i] != wantSeq[i] {
			t.Fatalf("degraded run diverged at position %d: got %+v, want %+v", i, liveSeq[i], wantSeq[i])
		}
	}

	// Recovery from the re-armed root: a fresh engine restoring dir2
	// (checkpoint + the post-re-arm log) re-emits exactly the reference
	// tail at or above the checkpoint floor.
	st, err := CheckpointInfo(dir2)
	if err != nil {
		t.Fatalf("no checkpoint committed under the re-arm root: %v", err)
	}
	var outC durOut
	cfgC := base
	cfgC.OnOutput = outC.cb
	cfgC.Durability = chaosDurability(dir2, nil)
	cfgC.Durability.OnError = DurDegrade
	engC, err := New(cfgC)
	if err != nil {
		t.Fatal(err)
	}
	if err := engC.Restore(""); err != nil {
		t.Fatalf("Restore from the re-arm root: %v", err)
	}
	if err := engC.Close(); err != nil {
		t.Fatal(err)
	}
	var combined []orderedKey
	for _, k := range liveSeq[:killLen] {
		if k.TS < st.LastPunct {
			combined = append(combined, k)
		}
	}
	combined = append(combined, outC.snap()...)
	if len(combined) != len(wantSeq) {
		t.Fatalf("re-arm recovery: %d results, reference emitted %d (floor=%d)", len(combined), len(wantSeq), st.LastPunct)
	}
	for i := range wantSeq {
		if combined[i] != wantSeq[i] {
			t.Fatalf("re-arm recovery diverged at position %d: got %+v, want %+v", i, combined[i], wantSeq[i])
		}
	}
}

// TestChaosDegrade runs the shed/re-arm contract on both engine kinds.
func TestChaosDegrade(t *testing.T) {
	t.Run("shards=1", func(t *testing.T) { runChaosDegrade(t, 0xDE6A, 1) })
	t.Run("shards=4", func(t *testing.T) { runChaosDegrade(t, 0xDE6B, 4) })
}

// runOverload drives Config.MaxLiveTuples: pushes past the bound are
// rejected batch-atomically with ErrOverloaded before any state
// change, Health().Overloaded tracks the rejection, and admission
// resumes once the windows drain.
func runOverload(t *testing.T, shards int) {
	t.Helper()
	cfg := Config[okR, okS]{
		Workers:       1,
		Shards:        shards,
		Predicate:     shardedEqui,
		WindowR:       Window{Duration: time.Second},
		WindowS:       Window{Duration: time.Second},
		MaxInFlight:   2,
		KeyR:          okRKey,
		KeyS:          okSKey,
		MaxLiveTuples: 50,
		OnOutput:      func(Item[okR, okS]) {},
		Adapt:         AdaptConfig{DisableHeartbeat: true},
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Fill to the bound with non-matching keys, then settle so the live
	// gauges are exact.
	for i := 0; i < 50; i++ {
		if err := eng.PushR(okR{Key: uint64(1000 + i)}, int64(i)); err != nil {
			t.Fatalf("push %d within the bound: %v", i, err)
		}
	}
	eng.Tick(50)
	if h := eng.Health(); h.Overloaded {
		t.Fatal("Health().Overloaded before any rejection")
	}

	before := eng.Stats()
	err = eng.PushR(okR{Key: 2000}, 51)
	if err == nil {
		t.Fatal("push 51 past MaxLiveTuples=50 succeeded")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overload rejection = %v, not ErrOverloaded", err)
	}
	if !eng.Health().Overloaded {
		t.Fatal("Health().Overloaded is false right after a rejection")
	}

	// Batch atomicity: an over-bound batch is rejected whole, leaving
	// no trace in the admission counters.
	batch := make([]Stamped[okR], 10)
	for i := range batch {
		batch[i] = Stamped[okR]{Payload: okR{Key: uint64(3000 + i)}, TS: 52}
	}
	if err := eng.PushRBatch(batch); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-bound batch: %v, want ErrOverloaded", err)
	}
	after := eng.Stats()
	if after.RIn != before.RIn {
		t.Fatalf("rejected pushes changed RIn: %d -> %d", before.RIn, after.RIn)
	}
	if after.AdmissionRejects < 2 {
		t.Fatalf("Stats().AdmissionRejects = %d, want >= 2", after.AdmissionRejects)
	}

	// Drain the windows (duration 1s in stream time) and admission
	// resumes; the overload flag clears with the next accepted push.
	// The first Tick injects the due expiries, the second quiesces
	// behind them so the live gauges the guard resamples are settled.
	eng.Tick(3 * int64(time.Second))
	eng.Tick(3*int64(time.Second) + 1)
	if err := eng.PushR(okR{Key: 4000}, 3*int64(time.Second)); err != nil {
		t.Fatalf("push after the windows drained: %v", err)
	}
	if h := eng.Health(); h.Overloaded {
		t.Fatal("Health().Overloaded still set after admission resumed")
	}
}

// TestOverloadAdmission runs the MaxLiveTuples contract on both engine
// kinds.
func TestOverloadAdmission(t *testing.T) {
	t.Run("shards=1", func(t *testing.T) { runOverload(t, 1) })
	t.Run("shards=2", func(t *testing.T) { runOverload(t, 2) })
}

// TestOverloadReplayBypassesGuard: WAL replay re-admits acknowledged
// records even when they exceed MaxLiveTuples — the bound gates new
// work, never recovery — and the guard re-seeds from the restored
// footprint afterwards.
func TestOverloadReplayBypassesGuard(t *testing.T) {
	dir := t.TempDir()
	cfg := Config[okR, okS]{
		Workers:       1,
		Predicate:     shardedEqui,
		WindowR:       Window{Duration: time.Second},
		WindowS:       Window{Duration: time.Second},
		KeyR:          okRKey,
		KeyS:          okSKey,
		MaxLiveTuples: 40,
		OnOutput:      func(Item[okR, okS]) {},
		Durability:    okCodecs(dir, 0, 0),
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the checkpoint before any pushes: every record then reaches
	// the restored engine through WAL replay — the path that must
	// bypass the admission guard.
	if err := eng.Checkpoint(""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := eng.PushR(okR{Key: uint64(1000 + i)}, int64(i)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	eng.Close()

	eng2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if err := eng2.Restore(""); err != nil {
		t.Fatalf("Restore rejected a replay at the admission bound: %v", err)
	}
	eng2.Tick(40)
	// The restored footprint fills the bound exactly, so new admissions
	// must hit ErrOverloaded within the guard's documented in-flight
	// slack (the bound re-seeds lazily from settled pipeline gauges).
	rejected := false
	for i := 0; i < 10; i++ {
		err := eng2.PushR(okR{Key: uint64(5000 + i)}, int64(41+i))
		if errors.Is(err, ErrOverloaded) {
			rejected = true
			break
		}
		if err != nil {
			t.Fatalf("push %d after restore: %v", i, err)
		}
		eng2.Tick(int64(41 + i)) // settle so the next lazy resample is exact
	}
	if !rejected {
		t.Fatal("guard never rejected past the restored footprint: Restore did not re-seed the admission bound")
	}
}

// TestFloorStallWatchdog: with punctuations armed but the collector
// effectively stalled, ingress runs ahead of a frozen merged floor and
// the heartbeat watchdog must raise Health().FloorStalled plus the
// floor_stalled trace event.
func TestFloorStallWatchdog(t *testing.T) {
	cfg := Config[okR, okS]{
		Workers:     1,
		Shards:      2,
		Predicate:   shardedEqui,
		WindowR:     Window{Duration: time.Hour},
		WindowS:     Window{Duration: time.Hour},
		MaxInFlight: 4,
		KeyR:        okRKey,
		KeyS:        okSKey,
		Punctuate:   true,
		// Far beyond the watchdog threshold, so the floor is frozen while
		// the stall is detected — but short enough that Close (which waits
		// out one collector sleep) returns promptly.
		CollectPeriod: 2 * time.Second,
		Obs:           ObsConfig{EventBuffer: 256},
		Adapt: AdaptConfig{
			HeartbeatPeriod: time.Millisecond,
			StallWatchdog:   20 * time.Millisecond,
		},
		OnOutput: func(Item[okR, okS]) {},
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Fixed keys keep their lanes visibly active, so those lanes never
	// get an idle-shard heartbeat promise — and with the collector
	// stalled they never promise themselves. The merged floor (the
	// minimum over lanes) is frozen while ingress advances: exactly the
	// stall the watchdog watches.
	deadline := time.Now().Add(10 * time.Second)
	ts := int64(0)
	for !eng.Health().FloorStalled {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never raised FloorStalled")
		}
		ts += int64(time.Millisecond)
		if err := eng.PushR(okR{Key: 1}, ts); err != nil {
			t.Fatal(err)
		}
		if err := eng.PushS(okS{Key: 2}, ts); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	found := false
	for _, ev := range eng.Events(0) {
		if ev.Kind == "floor_stalled" {
			found = true
		}
	}
	if !found {
		t.Fatal("FloorStalled set without a floor_stalled trace event")
	}
	if snap := eng.StatsSnapshot(); !snap.Health.FloorStalled {
		t.Fatal("StatsSnapshot().Health does not carry FloorStalled")
	}
}
