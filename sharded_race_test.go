package handshakejoin

import (
	"sync"
	"testing"
	"time"
)

// cid payloads carry a unique per-side id so results can be identified
// independently of the engine-assigned sequence numbers.
type cidR struct {
	Key uint64
	ID  int
}

type cidS struct {
	Key uint64
	ID  int
}

// TestShardedConcurrentPushers drives PushR/PushS from several
// goroutines each through the sharded driver — the concurrency mode the
// single-pipeline Engine forbids — and verifies under -race that no
// results are dropped or duplicated. Windows hold every tuple (Count >=
// total) and all tuples share one timestamp, so the expected output is
// exactly one result per key-matching (R, S) pair regardless of the
// interleaving the scheduler picks.
func TestShardedConcurrentPushers(t *testing.T) {
	runShardedConcurrentPushers(t, AdaptConfig{})
}

// TestShardedConcurrentPushersAdaptive repeats the concurrent-pusher
// workload with the adaptive runtime fully on — background control
// loop at a tight period plus heartbeats — so the race detector
// exercises the router's admission accounting, the sampler and the
// heartbeat path against concurrent pushers. (Windows hold every
// tuple, so no cut-over can become safe; single-threaded schedules
// with live cut-overs are covered by the adapt oracle tests.)
func TestShardedConcurrentPushersAdaptive(t *testing.T) {
	runShardedConcurrentPushers(t, AdaptConfig{
		Enable:           true,
		SamplePeriod:     100 * time.Microsecond,
		SkewThreshold:    1.01,
		MaxMovesPerCycle: 8,
	})
}

// TestShardedConcurrentPushersMigrating adds live state migration to
// the concurrent-pusher workload: windows hold every tuple, so no
// drain cut-over can ever become safe and every planned move stalls —
// exactly the regime that escalates to migration. The background
// control loop moves live window state between pipelines (by
// incremental handoffs, the default escalation) while pushers hammer
// both sides; the race detector watches, and the result multiset must
// still be exact.
func TestShardedConcurrentPushersMigrating(t *testing.T) {
	runShardedConcurrentPushers(t, AdaptConfig{
		Enable:           true,
		SamplePeriod:     100 * time.Microsecond,
		SkewThreshold:    1.01,
		MaxMovesPerCycle: 8,
		StaleMoveCycles:  1 << 20, // intents must survive to escalation
		Migration: MigrationConfig{
			Enable:            true,
			MaxTuplesPerCycle: 1 << 20, // every group fits: maximal churn
			AfterCycles:       2,
			MinGroupLoad:      0.01,
			SliceTuples:       128, // hot groups need several live hops
		},
	})
}

// TestShardedConcurrentPushersMigratingFreezing repeats the workload
// with the all-or-nothing escalation (Migration.Freezing), keeping the
// PR 3 freezing path race-covered.
func TestShardedConcurrentPushersMigratingFreezing(t *testing.T) {
	runShardedConcurrentPushers(t, AdaptConfig{
		Enable:           true,
		SamplePeriod:     100 * time.Microsecond,
		SkewThreshold:    1.01,
		MaxMovesPerCycle: 8,
		StaleMoveCycles:  1 << 20,
		Migration: MigrationConfig{
			Enable:            true,
			MaxTuplesPerCycle: 1 << 20,
			AfterCycles:       2,
			MinGroupLoad:      0.01,
			Freezing:          true,
		},
	})
}

func runShardedConcurrentPushers(t *testing.T, acfg AdaptConfig) {
	runShardedConcurrentPushersWith(t, acfg, nil)
}

// runShardedConcurrentPushersWith optionally runs bg on its own
// goroutine against the engine while the pushers are live; it is
// stopped (and joined) before Close.
func runShardedConcurrentPushersWith(t *testing.T, acfg AdaptConfig, bg func(*ShardedEngine[cidR, cidS], <-chan struct{})) {
	const (
		pushers = 4
		perSide = 600 // per pusher goroutine
		keys    = 16
		totalR  = pushers * perSide
		totalS  = pushers * perSide
	)
	var mu sync.Mutex
	seen := make(map[[2]int]int)
	cfg := Config[cidR, cidS]{
		Workers:     2,
		Shards:      4,
		Predicate:   func(r cidR, s cidS) bool { return r.Key == s.Key },
		WindowR:     Window{Count: totalR},
		WindowS:     Window{Count: totalS},
		Batch:       8,
		MaxInFlight: 4,
		Punctuate:   true,
		Adapt:       acfg,
		KeyR:        func(r cidR) uint64 { return r.Key },
		KeyS:        func(s cidS) uint64 { return s.Key },
		OnOutput: func(it Item[cidR, cidS]) {
			if it.Punct {
				return
			}
			mu.Lock()
			seen[[2]int{it.Result.Pair.R.Payload.ID, it.Result.Pair.S.Payload.ID}]++
			mu.Unlock()
		},
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var bgWg sync.WaitGroup
	if bg != nil {
		se := eng.(*ShardedEngine[cidR, cidS])
		bgWg.Add(1)
		go func() {
			defer bgWg.Done()
			bg(se, stop)
		}()
	}

	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSide; i++ {
				id := p*perSide + i
				if err := eng.PushR(cidR{Key: uint64(id % keys), ID: id}, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSide; i++ {
				id := p*perSide + i
				if err := eng.PushS(cidS{Key: uint64((id * 7) % keys), ID: id}, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Concurrent ticks exercise the flush/expiry path against pushes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			eng.Tick(0)
		}
	}()
	wg.Wait()
	close(stop)
	bgWg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Expected: every (R, S) pair with matching keys, exactly once.
	var want uint64
	rPerKey := make(map[uint64]int)
	sPerKey := make(map[uint64]int)
	for id := 0; id < totalR; id++ {
		rPerKey[uint64(id%keys)]++
	}
	for id := 0; id < totalS; id++ {
		sPerKey[uint64((id*7)%keys)]++
	}
	for k, nr := range rPerKey {
		want += uint64(nr * sPerKey[k])
	}
	var got uint64
	for pair, n := range seen {
		if n != 1 {
			t.Fatalf("pair %v emitted %d times", pair, n)
		}
		got += uint64(n)
	}
	if got != want {
		t.Fatalf("collected %d results, want %d (dropped %d)", got, want, int64(want)-int64(got))
	}
	st := eng.Stats()
	if st.Results != want {
		t.Fatalf("Stats.Results = %d, want %d", st.Results, want)
	}
	if st.RIn != totalR || st.SIn != totalS {
		t.Fatalf("Stats in = (%d, %d), want (%d, %d)", st.RIn, st.SIn, totalR, totalS)
	}
	if len(st.ShardResults) != 4 {
		t.Fatalf("ShardResults = %v, want 4 entries", st.ShardResults)
	}
	var shardSum uint64
	for _, n := range st.ShardResults {
		shardSum += n
	}
	if shardSum != want {
		t.Fatalf("per-shard results sum to %d, want %d", shardSum, want)
	}
}
