module handshakejoin

go 1.24
