package handshakejoin

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"handshakejoin/internal/workload"
)

// The tests in this file establish the durability subsystem's oracle
// contract: kill an engine at a push boundary, build a fresh engine,
// Restore the checkpoint, replay the WAL tail, continue the schedule —
// and the combined output (the killed run's results below the
// checkpoint's punctuation floor, then everything the restored run
// emits) is exactly the uninterrupted run's Ordered sequence. The
// uninterrupted engine itself is the reference, so the claim covers
// window boundaries, partial batch buffers, pending expiries, the
// sorter, and (sharded) the routing table including handoffs held open
// across the kill.

// Payload codecs for the oracle workloads' okR/okS types.
func encOKR(r okR) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint64(b, r.Key)
	binary.LittleEndian.PutUint32(b[8:], uint32(r.Val))
	return b
}

func decOKR(b []byte) (okR, error) {
	if len(b) != 12 {
		return okR{}, fmt.Errorf("okR payload is %d bytes, want 12", len(b))
	}
	return okR{Key: binary.LittleEndian.Uint64(b), Val: int32(binary.LittleEndian.Uint32(b[8:]))}, nil
}

func encOKS(s okS) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint64(b, s.Key)
	binary.LittleEndian.PutUint32(b[8:], uint32(s.Val))
	return b
}

func decOKS(b []byte) (okS, error) {
	if len(b) != 12 {
		return okS{}, fmt.Errorf("okS payload is %d bytes, want 12", len(b))
	}
	return okS{Key: binary.LittleEndian.Uint64(b), Val: int32(binary.LittleEndian.Uint32(b[8:]))}, nil
}

func okCodecs(dir string, syncEvery, ckptEvery int) Durability[okR, okS] {
	return Durability[okR, okS]{
		WALDir:                 dir,
		SyncEvery:              syncEvery,
		CheckpointEveryBatches: ckptEvery,
		EncodeR:                encOKR,
		DecodeR:                decOKR,
		EncodeS:                encOKS,
		DecodeS:                decOKS,
	}
}

// durOut collects the non-punctuation output sequence under a mutex so
// a "kill" can cut it at an exact length.
type durOut struct {
	mu  sync.Mutex
	seq []orderedKey
}

func (o *durOut) cb(it Item[okR, okS]) {
	if it.Punct {
		return
	}
	o.mu.Lock()
	p := it.Result.Pair
	o.seq = append(o.seq, orderedKey{TS: p.TS(), RSeq: p.R.Seq, SSeq: p.S.Seq})
	o.mu.Unlock()
}

func (o *durOut) len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.seq)
}

func (o *durOut) snap() []orderedKey {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]orderedKey(nil), o.seq...)
}

// durOp is one step of a precomputed driver schedule, applicable to any
// engine so the uninterrupted, killed and restored runs see identical
// push boundaries.
type durOp struct {
	kind byte // 'r' push R, 's' push S, 't' tick
	r    okR
	s    okS
	ts   int64
}

func buildDurOps(seed uint64, n int) []durOp {
	rnd := workload.NewRand(seed)
	const step = int64(1e6)
	ts := int64(0)
	ops := make([]durOp, 0, n)
	for i := 0; i < n; i++ {
		ts += int64(rnd.Intn(3)) * step / 2
		switch {
		case i%97 == 96:
			ts += 20 * step
			ops = append(ops, durOp{kind: 't', ts: ts})
		case i%3 == 2:
			ops = append(ops, durOp{kind: 's', s: okS{Key: uint64(rnd.Intn(48)), Val: int32(rnd.Intn(8))}, ts: ts})
		default:
			ops = append(ops, durOp{kind: 'r', r: okR{Key: uint64(rnd.Intn(48)), Val: int32(rnd.Intn(8))}, ts: ts})
		}
	}
	return ops
}

func applyDurOp(t *testing.T, eng Joiner[okR, okS], op durOp) {
	t.Helper()
	switch op.kind {
	case 'r':
		if err := eng.PushR(op.r, op.ts); err != nil {
			t.Fatalf("PushR: %v", err)
		}
	case 's':
		if err := eng.PushS(op.s, op.ts); err != nil {
			t.Fatalf("PushS: %v", err)
		}
	case 't':
		eng.Tick(op.ts)
	}
}

// runKillRestore drives the full oracle: an uninterrupted reference
// run, a durable run killed after ops[:killAt], and a restored run
// completing the schedule; then checks the recovery contract exactly.
func runKillRestore(t *testing.T, seed uint64, shards, batch int, winR, winS Window, handoff bool) {
	t.Helper()
	ops := buildDurOps(seed, 1200)
	rnd := workload.NewRand(seed ^ 0xD00D)
	killAt := len(ops)/3 + rnd.Intn(len(ops)/3)

	base := Config[okR, okS]{
		Workers:       1 + rnd.Intn(3),
		Shards:        shards,
		Predicate:     shardedEqui,
		WindowR:       winR,
		WindowS:       winS,
		Batch:         batch,
		MaxInFlight:   2,
		KeyR:          okRKey,
		KeyS:          okSKey,
		Ordered:       true,
		CollectPeriod: 200 * time.Microsecond,
		Adapt:         AdaptConfig{DisableHeartbeat: true},
	}
	if handoff {
		base.Adapt = AdaptConfig{
			Enable:           true,
			SamplePeriod:     -1, // the schedule is the only control driver
			SkewThreshold:    1.05,
			MaxMovesPerCycle: 16,
			KeyGroups:        8 * shards,
			Migration:        MigrationConfig{SliceTuples: 16},
			DisableHeartbeat: true,
		}
	}

	// Reference: the same schedule, uninterrupted, without durability.
	var want durOut
	refCfg := base
	refCfg.OnOutput = want.cb
	ref, err := New(refCfg)
	if err != nil {
		t.Fatalf("seed %d: reference engine: %v", seed, err)
	}
	for _, op := range ops {
		applyDurOp(t, ref, op)
	}
	if err := ref.Close(); err != nil {
		t.Fatalf("seed %d: reference close: %v", seed, err)
	}

	// Killed run: durable, abandoned mid-schedule. Close only tears the
	// goroutines down; everything it emits past killLen is discarded, as
	// a real crash would have discarded it.
	dir := t.TempDir()
	var outB durOut
	cfgB := base
	cfgB.OnOutput = outB.cb
	cfgB.Durability = okCodecs(dir, 64, 120+rnd.Intn(80))
	engB, err := New(cfgB)
	if err != nil {
		t.Fatalf("seed %d: durable engine: %v", seed, err)
	}
	var hg uint32
	handoffBegun := false
	for i, op := range ops[:killAt] {
		applyDurOp(t, engB, op)
		if handoff && !handoffBegun && i == killAt/2 {
			se := engB.(*ShardedEngine[okR, okS])
			hg = uint32(rnd.Intn(se.KeyGroups()))
			from := se.router.Partitioner().ShardOfGroup(hg)
			to := (from + 1) % shards
			if err := se.BeginMigration(hg, to); err != nil {
				t.Fatalf("seed %d: BeginMigration(%d, %d): %v", seed, hg, to, err)
			}
			// Cut a checkpoint with the handoff held open, so the
			// restored router must carry it.
			if err := engB.Checkpoint(""); err != nil {
				t.Fatalf("seed %d: Checkpoint: %v", seed, err)
			}
			handoffBegun = true
		}
	}
	st, err := CheckpointInfo(dir)
	if err != nil {
		t.Fatalf("seed %d: no checkpoint committed before the kill: %v", seed, err)
	}
	killLen := outB.len()
	if err := engB.Close(); err != nil {
		t.Fatalf("seed %d: killed close: %v", seed, err)
	}

	// Restored run: fresh engine, same config, Restore + WAL replay,
	// then the rest of the schedule.
	var outC durOut
	cfgC := cfgB
	cfgC.OnOutput = outC.cb
	engC, err := New(cfgC)
	if err != nil {
		t.Fatalf("seed %d: restored engine: %v", seed, err)
	}
	if err := engC.Restore(""); err != nil {
		t.Fatalf("seed %d: Restore: %v", seed, err)
	}
	if handoff && handoffBegun {
		se := engC.(*ShardedEngine[okR, okS])
		if !se.router.InHandoff(hg) {
			t.Fatalf("seed %d: restored engine lost the open handoff of group %d", seed, hg)
		}
	}
	for _, op := range ops[killAt:] {
		applyDurOp(t, engC, op)
	}
	if handoff && handoffBegun {
		se := engC.(*ShardedEngine[okR, okS])
		for {
			_, done, err := se.AdvanceMigration(hg)
			if err != nil {
				t.Fatalf("seed %d: AdvanceMigration(%d): %v", seed, hg, err)
			}
			if done {
				break
			}
		}
	}
	if err := engC.Close(); err != nil {
		t.Fatalf("seed %d: restored close: %v", seed, err)
	}

	// The contract: killed output below the checkpoint's punctuation
	// floor, then the restored run's output, is the uninterrupted
	// sequence exactly.
	var combined []orderedKey
	for _, k := range outB.snap()[:killLen] {
		if k.TS < st.LastPunct {
			combined = append(combined, k)
		}
	}
	combined = append(combined, outC.snap()...)
	wantSeq := want.snap()
	if len(combined) != len(wantSeq) {
		t.Fatalf("seed %d (shards=%d batch=%d handoff=%v killAt=%d/%d floor=%d): recovered %d results, uninterrupted run emitted %d",
			seed, shards, batch, handoff, killAt, len(ops), st.LastPunct, len(combined), len(wantSeq))
	}
	for i := range wantSeq {
		if combined[i] != wantSeq[i] {
			t.Fatalf("seed %d (shards=%d batch=%d handoff=%v): position %d: got %+v, want %+v",
				seed, shards, batch, handoff, i, combined[i], wantSeq[i])
		}
	}
}

// TestKillRestoreOracle is the acceptance matrix: shard counts 1, 4
// and 8, per-tuple and batched admission, and — sharded — an
// incremental handoff held open across the kill.
func TestKillRestoreOracle(t *testing.T) {
	winR := Window{Duration: 150 * time.Millisecond, Count: 200}
	winS := Window{Duration: 130 * time.Millisecond}
	cases := []struct {
		name    string
		shards  int
		batch   int
		handoff bool
	}{
		{"shards=1", 1, 1, false},
		{"shards=1/batch=3", 1, 3, false},
		{"shards=4", 4, 1, false},
		{"shards=4/handoff", 4, 1, true},
		{"shards=8/batch=3", 8, 3, false},
		{"shards=8/handoff", 8, 1, true},
	}
	for i, tc := range cases {
		tc := tc
		seed := uint64(0xD0C5 + i*7919)
		t.Run(tc.name, func(t *testing.T) {
			runKillRestore(t, seed, tc.shards, tc.batch, winR, winS, tc.handoff)
		})
	}
}

// TestDurabilityValidation pins the configuration contract: WALDir
// demands all four codecs and the LLHJ algorithm.
func TestDurabilityValidation(t *testing.T) {
	base := Config[okR, okS]{
		Workers:   1,
		Predicate: shardedEqui,
		WindowR:   Window{Count: 16},
		WindowS:   Window{Count: 16},
		KeyR:      okRKey,
		KeyS:      okSKey,
		OnOutput:  func(Item[okR, okS]) {},
	}

	cfg := base
	cfg.Durability = Durability[okR, okS]{WALDir: t.TempDir()}
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted Durability.WALDir without codecs")
	}

	cfg = base
	cfg.Algorithm = HSJ
	cfg.Durability = okCodecs(t.TempDir(), 0, 0)
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted durability on the HSJ pipeline")
	}

	cfg = base
	cfg.Durability = okCodecs(t.TempDir(), 0, 0)
	eng, err := New(cfg)
	if err != nil {
		t.Fatalf("valid durable config rejected: %v", err)
	}
	eng.Close()
}

// TestRestoreFingerprintMismatch: a checkpoint binds to the window,
// shard and ordering configuration that produced it; loading it into a
// differently-shaped engine must fail loudly.
func TestRestoreFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := Config[okR, okS]{
		Workers:    1,
		Predicate:  shardedEqui,
		WindowR:    Window{Count: 32},
		WindowS:    Window{Count: 32},
		KeyR:       okRKey,
		KeyS:       okSKey,
		OnOutput:   func(Item[okR, okS]) {},
		Durability: okCodecs(dir, 0, 0),
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := eng.PushR(okR{Key: uint64(i)}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Checkpoint(""); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	cfg2 := cfg
	cfg2.WindowR = Window{Count: 64} // different window shape
	eng2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if err := eng2.Restore(""); err == nil {
		t.Fatal("Restore accepted a checkpoint from a different window configuration")
	}

	// A non-fresh engine must refuse Restore too.
	cfg3 := cfg
	eng3, err := New(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	defer eng3.Close()
	if err := eng3.PushR(okR{Key: 1}, 1); err != nil {
		t.Fatal(err)
	}
	if err := eng3.Restore(""); err == nil {
		t.Fatal("Restore accepted an engine that had already admitted tuples")
	}
}

// TestCheckpointObservability: the checkpoint and restore paths emit
// their trace events and feed the WAL/checkpoint metrics.
func TestCheckpointObservability(t *testing.T) {
	dir := t.TempDir()
	cfg := Config[okR, okS]{
		Workers:    1,
		Shards:     2,
		Predicate:  shardedEqui,
		WindowR:    Window{Count: 32},
		WindowS:    Window{Count: 32},
		KeyR:       okRKey,
		KeyS:       okSKey,
		OnOutput:   func(Item[okR, okS]) {},
		Obs:        ObsConfig{EventBuffer: 256},
		Durability: okCodecs(dir, 0, 0),
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := eng.PushR(okR{Key: uint64(i % 8)}, int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := eng.PushS(okS{Key: uint64(i % 8)}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Checkpoint(""); err != nil {
		t.Fatal(err)
	}
	snap := eng.StatsSnapshot()
	if snap.WALBytes == 0 {
		t.Error("Snapshot.WALBytes is zero after 100 logged pushes")
	}
	if snap.Checkpoints != 1 {
		t.Errorf("Snapshot.Checkpoints = %d, want 1", snap.Checkpoints)
	}
	if snap.LastCheckpointNs <= 0 {
		t.Errorf("Snapshot.LastCheckpointNs = %d, want > 0", snap.LastCheckpointNs)
	}
	kinds := map[string]int{}
	for _, ev := range eng.Events(0) {
		kinds[ev.Kind]++
	}
	if kinds["checkpoint_begin"] == 0 || kinds["checkpoint_complete"] == 0 {
		t.Errorf("missing checkpoint trace events, got %v", kinds)
	}
	eng.Close()

	eng2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Restore(""); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range eng2.Events(0) {
		if ev.Kind == "restore_replay" {
			found = true
		}
	}
	if !found {
		t.Error("restore emitted no restore_replay event")
	}
	eng2.Close()
}

// TestCheckpointTruncatesWAL: a checkpoint whose cut covers the whole
// log advances Restore's replay start to the log head, so the replay
// after a checkpoint-then-crash run touches only the tail.
func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := Config[okR, okS]{
		Workers:    1,
		Predicate:  shardedEqui,
		WindowR:    Window{Count: 16},
		WindowS:    Window{Count: 16},
		KeyR:       okRKey,
		KeyS:       okSKey,
		OnOutput:   func(Item[okR, okS]) {},
		Durability: okCodecs(dir, 0, 0),
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 30; i++ {
		if err := eng.PushR(okR{Key: uint64(i)}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Checkpoint(""); err != nil {
		t.Fatal(err)
	}
	st, err := CheckpointInfo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.WALFrom != 30 {
		t.Fatalf("checkpoint covers %d WAL records, want 30", st.WALFrom)
	}
	// Ten more records, a second checkpoint: the manifest must move on.
	for i := 30; i < 40; i++ {
		if err := eng.PushR(okR{Key: uint64(i)}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Checkpoint(""); err != nil {
		t.Fatal(err)
	}
	st2, err := CheckpointInfo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.WALFrom != 40 {
		t.Fatalf("second checkpoint covers %d WAL records, want 40", st2.WALFrom)
	}
}
