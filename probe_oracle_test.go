package handshakejoin

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"handshakejoin/internal/probe"
	"handshakejoin/internal/stream"
)

// The tests in this file establish the correctness claim of the
// selectivity-adaptive probe engine: whichever access path a key-group
// is on — and however often it flips mid-stream, including while a
// slice handoff is held open — the result multiset (and the exact
// Ordered-mode sequence) matches the sequential Kang oracle. Strategy
// flips are forced every ~150 pushes via SetStrategy waves cycling
// every class-admissible strategy across all groups, so probes land on
// freshly built lazy indexes, half-dropped indexes, and plain scans in
// the same run.

// shardedLEWithinKey joins tuples of equal key whose values are
// ordered — an inequality residual under a key-equality class.
func shardedLEWithinKey(r okR, s okS) bool { return r.Key == s.Key && r.Val <= s.Val }

// probeBandOverKey is a true band predicate over the join key itself
// (|keyR − keyS| <= 2): single-pipeline only, Class PredBand.
func probeBandOverKey(r okR, s okS) bool {
	d := int64(r.Key) - int64(s.Key)
	if d < 0 {
		d = -d
	}
	return d <= 2
}

// probeLEOverKey is a true inequality over the join key (keyR <= keyS):
// single-pipeline only, Class PredLE.
func probeLEOverKey(r okR, s okS) bool { return r.Key <= s.Key }

// probeTableOf reaches the engine's shared strategy table.
func probeTableOf(t *testing.T, eng Joiner[okR, okS]) *probe.Table {
	t.Helper()
	var tab *probe.Table
	switch e := eng.(type) {
	case *Engine[okR, okS]:
		tab = e.probeTab
	case *ShardedEngine[okR, okS]:
		tab = e.probeTab
	default:
		t.Fatalf("unexpected engine type %T", eng)
	}
	if tab == nil {
		t.Fatal("IndexAuto engine has no probe table")
	}
	return tab
}

// forceFlips pushes every key-group onto a new strategy, cycling the
// class-admissible set so consecutive waves move every group.
func forceFlips(tab *probe.Table, round int) {
	var cycle []probe.Strategy
	if tab.Class() == probe.ClassEqui {
		cycle = []probe.Strategy{probe.UseScan, probe.UseBTree, probe.UseHash}
	} else {
		cycle = []probe.Strategy{probe.UseScan, probe.UseBTree}
	}
	for g := 0; g < tab.Groups(); g++ {
		tab.SetStrategy(uint32(g), cycle[(round+g)%len(cycle)])
	}
}

// probeFlipSchedule is shardedSchedule with a forced strategy-flip wave
// every `every` pushes, so flips land mid-window with live index state.
func probeFlipSchedule(t *testing.T, tuples int, seed uint64, eng Joiner[okR, okS], o *oracleEngine, every int, flip func(round int)) {
	t.Helper()
	shardedScheduleBetween(t, tuples, seed, eng, o, func(i int) {
		if i%every == every-1 {
			flip(i / every)
		}
	})
}

func TestProbeAutoOracleMultiset(t *testing.T) {
	// IndexAuto across shard counts and predicate classes, with strategy
	// flips forced mid-stream: the multiset must stay exact. The window
	// mixes duration and count bounds so expiries slide entries out of
	// live hash chains and B-trees, not just out of scans.
	const step = int64(1e6)
	cases := []struct {
		name   string
		pred   func(okR, okS) bool
		class  PredicateClass
		band   uint64
		shards []int
	}{
		{"equi", shardedEqui, PredEqui, 0, []int{1, 4, 8}},
		{"band-within-key", shardedBandWithinKey, PredEqui, 0, []int{1, 4, 8}},
		{"le-within-key", shardedLEWithinKey, PredEqui, 0, []int{1, 4, 8}},
		{"band-over-key", probeBandOverKey, PredBand, 2, []int{1}},
		{"le-over-key", probeLEOverKey, PredLE, 0, []int{1}},
	}
	for _, tc := range cases {
		for _, shards := range tc.shards {
			t.Run(fmt.Sprintf("%s/shards=%d", tc.name, shards), func(t *testing.T) {
				cfg := Config[okR, okS]{
					Workers:     3,
					Shards:      shards,
					Predicate:   tc.pred,
					WindowR:     Window{Duration: time.Duration(140 * step), Count: 210},
					WindowS:     Window{Duration: time.Duration(160 * step), Count: 190},
					Batch:       4,
					MaxInFlight: 2,
					KeyR:        okRKey,
					KeyS:        okSKey,
					Index:       IndexAuto,
					Class:       tc.class,
					Band:        tc.band,
					// The oracle replays the exact batch-flush schedule
					// (see TestShardedMatchesOracleExactly).
					Adapt: AdaptConfig{DisableHeartbeat: true},
				}
				var mu sync.Mutex
				got := map[stream.PairKey]int{}
				cfg.OnOutput = func(it Item[okR, okS]) {
					if it.Punct {
						return
					}
					mu.Lock()
					got[it.Result.Pair.Key()]++
					mu.Unlock()
				}
				eng, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				tab := probeTableOf(t, eng)
				o := newOracleEngine(cfg, tc.pred)
				probeFlipSchedule(t, 900, uint64(shards)*733+tc.band+uint64(tc.class), eng, o, 150, func(round int) {
					forceFlips(tab, round)
				})

				missing, extra, dups := diffPairMultiset(o.pairs, got)
				if missing != 0 || extra != 0 || dups != 0 {
					t.Fatalf("IndexAuto vs oracle: %d missing, %d extra, %d duplicates (oracle %d distinct)",
						missing, extra, dups, len(o.pairs))
				}
				if len(o.pairs) == 0 {
					t.Fatal("workload produced no results; test has no teeth")
				}
				st := eng.Stats()
				if st.Results != sum(o.pairs) {
					t.Fatalf("Stats.Results = %d, oracle produced %d", st.Results, sum(o.pairs))
				}
				if st.StrategySwitches == 0 {
					t.Fatal("no strategy switches recorded: the forced flips never applied")
				}
				// Conservation: every probe dispatched took exactly one
				// path, and the forced waves exercised every admissible
				// one.
				if st.ProbeScan+st.ProbeHash+st.ProbeBTree == 0 {
					t.Fatal("no probe dispatches counted")
				}
				if st.ProbeScan == 0 || st.ProbeBTree == 0 {
					t.Fatalf("strategy mix has dead paths: scan=%d hash=%d btree=%d",
						st.ProbeScan, st.ProbeHash, st.ProbeBTree)
				}
				if tc.class == PredEqui && st.ProbeHash == 0 {
					t.Fatalf("equi class never hash-probed: scan=%d hash=%d btree=%d",
						st.ProbeScan, st.ProbeHash, st.ProbeBTree)
				}
			})
		}
	}
}

func TestProbeAutoOrderedExactSequence(t *testing.T) {
	// Ordered mode under forced flips: the merged, punctuation-sorted
	// output must remain the exact deterministic sequence regardless of
	// which access path produced each result.
	const step = int64(1e6)
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := Config[okR, okS]{
				Workers:       3,
				Shards:        shards,
				Predicate:     shardedBandWithinKey,
				WindowR:       Window{Duration: time.Duration(120 * step), Count: 200},
				WindowS:       Window{Duration: time.Duration(160 * step), Count: 200},
				Batch:         4,
				MaxInFlight:   2,
				Ordered:       true,
				CollectPeriod: 200 * time.Microsecond,
				KeyR:          okRKey,
				KeyS:          okSKey,
				Index:         IndexAuto,
				Class:         PredEqui,
				Adapt:         AdaptConfig{DisableHeartbeat: true},
			}
			var mu sync.Mutex
			var gotSeq []orderedKey
			cfg.OnOutput = func(it Item[okR, okS]) {
				mu.Lock()
				defer mu.Unlock()
				if it.Punct {
					return
				}
				p := it.Result.Pair
				gotSeq = append(gotSeq, orderedKey{TS: p.TS(), RSeq: p.R.Seq, SSeq: p.S.Seq})
			}
			eng, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tab := probeTableOf(t, eng)
			o := newOracleEngine(cfg, shardedBandWithinKey)
			probeFlipSchedule(t, 900, uint64(shards)*41+7, eng, o, 140, func(round int) {
				forceFlips(tab, round)
			})

			want := o.orderedResults()
			if len(gotSeq) != len(want) {
				t.Fatalf("emitted %d results, oracle expects %d", len(gotSeq), len(want))
			}
			for i := range want {
				if gotSeq[i] != want[i] {
					t.Fatalf("position %d: got %+v, want %+v", i, gotSeq[i], want[i])
				}
			}
			if len(want) == 0 {
				t.Fatal("workload produced no results; test has no teeth")
			}
			if eng.Stats().StrategySwitches == 0 {
				t.Fatal("no strategy switches recorded: the forced flips never applied")
			}
		})
	}
}

func TestIdleIndexTeardownDuringSliceMigration(t *testing.T) {
	// The idle-index teardown (an adaptively built index unused for 4096
	// arrivals is dropped) interleaved with incremental migration:
	// indexes are force-built everywhere (hash on even groups, B-tree on
	// odd), every group is then forced onto scans so the builds sit
	// idle, and the filler traffic that follows pushes each node's
	// arrival counter past the teardown threshold mid-run — while
	// handoffs held open across the same stretch keep extracting window
	// slices from, and injecting them into, stores whose index set is
	// mid-teardown. Re-forcing hash afterwards rebuilds lazily over the
	// migrated entries. The multiset must stay exact throughout.
	cfg := sliceCfg(2, 16)
	cfg.WindowR = Window{Count: 300}
	cfg.WindowS = Window{Count: 280}
	cfg.Index = IndexAuto
	cfg.Class = PredEqui
	var mu sync.Mutex
	got := map[stream.PairKey]int{}
	cfg.OnOutput = func(it Item[okR, okS]) {
		if it.Punct {
			return
		}
		mu.Lock()
		got[it.Result.Pair.Key()]++
		mu.Unlock()
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := eng.(*ShardedEngine[okR, okS])
	tab := probeTableOf(t, eng)
	o := newOracleEngine(cfg, shardedEqui)
	between, maxHops := driveSliceMigrations(t, se, 2, 450, 17)
	zipfSchedule(t, 7000, 1.2, 64, 777, eng, o, func(i int) {
		between(i)
		switch {
		case i == 300: // force-build: hash on even groups, B-tree on odd
			for g := 0; g < tab.Groups(); g++ {
				if g%2 == 0 {
					tab.SetStrategy(uint32(g), probe.UseHash)
				} else {
					tab.SetStrategy(uint32(g), probe.UseBTree)
				}
			}
		case i >= 500 && i < 6400:
			// Pin every group to scan, every iteration: the crossover
			// model keeps wanting hash back under an equi zipf load, and
			// a one-shot force would be undone within a couple of
			// epochs. Re-forcing resets the evidence streak faster than
			// flipStreak epochs can accumulate, so the built indexes sit
			// genuinely idle. Each iteration admits up to two tuples
			// across two shards, so the per-node arrival counters cross
			// the 4096-arrival teardown threshold near i ≈ 5400 — with a
			// slice handoff from the migration driver held open there.
			for g := 0; g < tab.Groups(); g++ {
				tab.SetStrategy(uint32(g), probe.UseScan)
			}
		case i == 6400: // rebuild lazily over the migrated window state
			for g := 0; g < tab.Groups(); g++ {
				tab.SetStrategy(uint32(g), probe.UseHash)
			}
		}
	})

	missing, extra, dups := diffPairMultiset(o.pairs, got)
	if missing != 0 || extra != 0 || dups != 0 {
		t.Fatalf("teardown × slice migration: %d missing, %d extra, %d duplicates (oracle %d distinct)",
			missing, extra, dups, len(o.pairs))
	}
	if len(o.pairs) == 0 {
		t.Fatal("workload produced no results; test has no teeth")
	}
	st := eng.Stats()
	if st.SliceMigrations == 0 || st.MigratedTuples == 0 {
		t.Fatalf("no sliced state moved (hops %d, tuples %d); test has no teeth",
			st.SliceMigrations, st.MigratedTuples)
	}
	if *maxHops < 2 {
		t.Fatalf("no handoff needed more than %d hops: slices were not actually small", *maxHops)
	}
	if st.ProbeScan == 0 || st.ProbeHash == 0 || st.ProbeBTree == 0 {
		t.Fatalf("strategy phases have dead paths: scan=%d hash=%d btree=%d",
			st.ProbeScan, st.ProbeHash, st.ProbeBTree)
	}
	if st.PendingExpiries != 0 {
		t.Errorf("pending expiries: %d (an expiry raced its migrated tuple)", st.PendingExpiries)
	}
}

func TestProbeFlipsDuringSliceMigration(t *testing.T) {
	// Strategy flips while slice handoffs are held open across live
	// traffic: extracted tuples leave through (and re-enter into) lazy
	// indexes in arbitrary build states, windows compact under churn,
	// and the multiset must still be exact. Adapt is live here, so the
	// controller also feeds the router's group cardinality into the
	// strategy table every cycle.
	cfg := sliceCfg(4, 2)
	cfg.WindowR = Window{Count: 96}
	cfg.WindowS = Window{Count: 90}
	cfg.Index = IndexAuto
	cfg.Class = PredEqui
	var mu sync.Mutex
	got := map[stream.PairKey]int{}
	cfg.OnOutput = func(it Item[okR, okS]) {
		if it.Punct {
			return
		}
		mu.Lock()
		got[it.Result.Pair.Key()]++
		mu.Unlock()
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := eng.(*ShardedEngine[okR, okS])
	tab := probeTableOf(t, eng)
	o := newOracleEngine(cfg, shardedEqui)
	between, maxHops := driveSliceMigrations(t, se, 4, 90, 11)
	flips := 0
	zipfSchedule(t, 2600, 1.2, 96, 4242, eng, o, func(i int) {
		between(i)
		if i%130 == 129 { // flip waves land while handoffs are open
			forceFlips(tab, flips)
			flips++
		}
	})

	missing, extra, dups := diffPairMultiset(o.pairs, got)
	if missing != 0 || extra != 0 || dups != 0 {
		t.Fatalf("flips × slice migration: %d missing, %d extra, %d duplicates (oracle %d distinct)",
			missing, extra, dups, len(o.pairs))
	}
	st := eng.Stats()
	if st.SliceMigrations == 0 || st.MigratedTuples == 0 {
		t.Fatalf("no sliced state moved (hops %d, tuples %d); test has no teeth",
			st.SliceMigrations, st.MigratedTuples)
	}
	if *maxHops < 2 {
		t.Fatalf("no handoff needed more than %d hops: slices were not actually small", *maxHops)
	}
	if st.StrategySwitches == 0 {
		t.Fatal("no strategy switches recorded: the forced flips never applied")
	}
	if st.ProbeScan == 0 || st.ProbeHash == 0 || st.ProbeBTree == 0 {
		t.Fatalf("strategy mix has dead paths: scan=%d hash=%d btree=%d",
			st.ProbeScan, st.ProbeHash, st.ProbeBTree)
	}
	if st.PendingExpiries != 0 {
		t.Errorf("pending expiries: %d (an expiry raced its migrated tuple)", st.PendingExpiries)
	}
}
