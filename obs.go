package handshakejoin

import (
	"strconv"

	"handshakejoin/internal/metrics"
	"handshakejoin/internal/obs"
)

// ObsConfig opts an engine into the live observability layer.
//
// With a non-empty Addr the engine serves, for its lifetime, an HTTP
// endpoint with Prometheus-text metrics (/metrics), the control-plane
// event trace as JSONL (/events?since=N), expvar (/debug/vars) and
// net/http/pprof (/debug/pprof/). With EventBuffer > 0 (or any Addr)
// the engine records control-plane trace events into a bounded
// lock-free ring, drainable via Joiner.Events.
//
// The layer is strictly off the per-tuple hot path: counters are
// per-lane single-writer atomics, trace events are emitted only from
// cold control-plane branches (rebalance cut-overs, handoff hops, ring
// spills, compactions, heartbeats), and scrapes read without taking
// the ingress locks.
type ObsConfig struct {
	// Addr is the listen address for the export endpoint (e.g.
	// "127.0.0.1:9177", or ":0" for an ephemeral port — read the bound
	// address back with Joiner.ObsAddr). Empty disables the server.
	Addr string
	// EventBuffer is the trace-ring capacity in events (rounded up to a
	// power of two, minimum 64). 0 with an Addr set defaults to 1024;
	// 0 without an Addr disables tracing.
	EventBuffer int
}

// enabled reports whether any part of the layer is on.
func (o ObsConfig) enabled() bool { return o.Addr != "" || o.EventBuffer > 0 }

// ringSize returns the trace-ring capacity to allocate.
func (o ObsConfig) ringSize() int {
	if o.EventBuffer > 0 {
		return o.EventBuffer
	}
	return 1024
}

// TraceEvent is one control-plane trace event. Kind names the event
// ("rebalance_applied", "handoff_begin", "slice_hop", "handoff_settle",
// "migrate_freeze", "heartbeat_stall", "ring_spill", "ring_reanchor",
// "window_compact", "strategy_switch"); Shard and Group locate it (-1
// when not applicable); A and B are kind-specific operands (see the
// package documentation's Observability section for the schema).
type TraceEvent = obs.Event

// Snapshot is a race-safe mid-run view of an engine: the cumulative
// Stats plus live gauges a post-Close Stats call cannot answer. All
// fields are read from atomics (or under short internal locks), so
// calling StatsSnapshot concurrently with pushers is sound; cumulative
// counters lag the pushers by at most the in-flight batches.
type Snapshot struct {
	Stats

	// FloorLagNs is the punctuation-floor lag — newest admitted stream
	// timestamp minus the merged punctuation floor — the paper's
	// latency proxy: a growing lag means results are being promised
	// ever further behind ingress. -1 while either side is unknown
	// (nothing pushed yet, or no floor promised yet).
	FloorLagNs int64
	// InFlightHandoffs counts key-groups currently mid-handoff
	// (routing swapped, window state still split across two shards).
	InFlightHandoffs int
	// LiveWindowR / LiveWindowS are the per-shard live window
	// footprints in tuples (index = shard; length 1 for a
	// single-pipeline engine).
	LiveWindowR []int64
	LiveWindowS []int64
	// ExpiryDepth is the per-shard count of scheduled-but-not-yet-due
	// expiry entries — the backlog the window slide is working off.
	ExpiryDepth []int64
	// NextEventSeq is the sequence number the next trace event will
	// get; pass it to Events as since to drain only newer events. 0
	// when tracing is disabled.
	NextEventSeq uint64
	// WALBytes is the cumulative byte count appended to the write-ahead
	// log; Checkpoints the number of completed checkpoints; and
	// LastCheckpointNs the wall duration of the most recent one. All
	// zero when durability is disabled.
	WALBytes         uint64
	Checkpoints      uint64
	LastCheckpointNs int64
	// Health is the engine's degradation flags at the snapshot instant
	// (the same view Joiner.Health returns).
	Health Health
}

// latencyHist converts the engine's output-latency histogram to the
// exposition form, trimming unused high buckets.
func latencyHist(h *metrics.AtomicHistogram) obs.Hist {
	buckets := h.Buckets()
	top := 0
	for i, c := range buckets {
		if c > 0 {
			top = i + 1
		}
	}
	if top < 16 {
		top = 16 // always expose the sub-65µs range
	}
	hist := obs.Hist{
		Name:  "llhj_output_latency_ns",
		Help:  "Result latency in nanoseconds: admission of the later input tuple to delivery on the serving path.",
		Count: h.Count(),
		Sum:   float64(h.Sum()),
	}
	for i := 0; i < top; i++ {
		hist.Bounds = append(hist.Bounds, float64(uint64(1)<<uint(i+1)))
		hist.Counts = append(hist.Counts, buckets[i])
	}
	return hist
}

// gatherDump renders a Snapshot (plus the optional latency histogram
// and trace ring) as the exposition Dump the obs server serves.
func gatherDump(snap Snapshot, hist *metrics.AtomicHistogram, ring *obs.Ring) obs.Dump {
	var d obs.Dump
	counter := func(name, help string, v uint64, labels ...[2]string) {
		d.Samples = append(d.Samples, obs.Sample{Name: name, Help: help, Labels: labels, Value: float64(v)})
	}
	gauge := func(name, help string, v int64, labels ...[2]string) {
		d.Samples = append(d.Samples, obs.Sample{Name: name, Help: help, Gauge: true, Labels: labels, Value: float64(v)})
	}
	counter("llhj_ingress_total", "Tuples pushed, by stream side.", snap.RIn, [2]string{"side", "r"})
	counter("llhj_ingress_total", "", snap.SIn, [2]string{"side", "s"})
	counter("llhj_results_total", "Join results emitted.", snap.Results)
	counter("llhj_punctuations_total", "Punctuations emitted.", snap.Punctuations)
	counter("llhj_comparisons_total", "Window entries inspected across all workers.", snap.Comparisons)
	counter("llhj_probe_dispatch_total", "Window probes by the access path taken.", snap.ProbeScan, [2]string{"strategy", "scan"})
	counter("llhj_probe_dispatch_total", "", snap.ProbeHash, [2]string{"strategy", "hash"})
	counter("llhj_probe_dispatch_total", "", snap.ProbeBTree, [2]string{"strategy", "btree"})
	// The unlabeled sum is computed from the same snapshot, so a scrape
	// can assert the labeled series are conserved against it exactly.
	counter("llhj_probe_dispatches_total", "Window probes dispatched (sum over strategies).", snap.ProbeScan+snap.ProbeHash+snap.ProbeBTree)
	counter("llhj_strategy_switches_total", "Per-key-group probe strategy flips applied by IndexAuto.", snap.StrategySwitches)
	counter("llhj_pending_expiries_total", "Expiry messages that raced ahead of their tuple.", snap.PendingExpiries)
	for i, v := range snap.ShardIngress {
		counter("llhj_shard_ingress_total", "Tuples routed to each shard.", v, [2]string{"shard", strconv.Itoa(i)})
	}
	for i, v := range snap.ShardResults {
		counter("llhj_shard_results_total", "Results assembled per shard.", v, [2]string{"shard", strconv.Itoa(i)})
	}
	for i, v := range snap.LiveWindowR {
		gauge("llhj_live_window", "Live window footprint in tuples, by side and shard.", v, [2]string{"side", "r"}, [2]string{"shard", strconv.Itoa(i)})
	}
	for i, v := range snap.LiveWindowS {
		gauge("llhj_live_window", "", v, [2]string{"side", "s"}, [2]string{"shard", strconv.Itoa(i)})
	}
	for i, v := range snap.ExpiryDepth {
		gauge("llhj_expiry_depth", "Scheduled-but-not-due expiry entries per shard.", v, [2]string{"shard", strconv.Itoa(i)})
	}
	gauge("llhj_floor_lag_ns", "Newest admitted timestamp minus the merged punctuation floor; -1 unknown.", snap.FloorLagNs)
	gauge("llhj_handoffs_inflight", "Key-groups currently mid-handoff.", int64(snap.InFlightHandoffs))
	counter("llhj_rebalances_total", "Control cycles that proposed key-group moves.", snap.Rebalances)
	counter("llhj_keygroup_moves_total", "Key-group cut-overs applied through the drain path.", snap.KeyGroupMoves)
	counter("llhj_state_migrations_total", "Completed live key-group state migrations.", snap.StateMigrations)
	counter("llhj_migrated_tuples_total", "Window tuples carried by state migrations.", snap.MigratedTuples)
	counter("llhj_slice_migrations_total", "Bounded slice hops performed by incremental migrations.", snap.SliceMigrations)
	counter("llhj_store_spills_total", "Whole-ring directory spills into the overflow map.", snap.StoreSpills)
	counter("llhj_store_reanchors_total", "Below-base ring directory re-anchors.", snap.StoreReanchors)
	counter("llhj_store_compactions_total", "Window entry-slab compactions.", snap.StoreCompactions)
	counter("llhj_store_parks_total", "Entries parked in window overflow maps.", snap.StoreParks)
	gauge("llhj_store_overflow", "Current entries across all window overflow maps.", int64(snap.StoreOverflow))
	gauge("llhj_max_sort_buffer", "Ordered-output buffer high-water mark.", int64(snap.MaxSortBuffer))
	counter("llhj_wal_bytes_total", "Bytes appended to the write-ahead log.", snap.WALBytes)
	counter("llhj_checkpoints_total", "Checkpoints completed.", snap.Checkpoints)
	gauge("llhj_checkpoint_duration_ns", "Wall duration of the most recent checkpoint.", snap.LastCheckpointNs)
	counter("llhj_wal_retries_total", "WAL append and checkpoint-write retry attempts.", snap.WALRetries)
	counter("llhj_wal_sheds_total", "Transitions into the degraded (shed) durability state.", snap.WALSheds)
	counter("llhj_admission_rejects_total", "Pushes rejected against MaxLiveTuples.", snap.AdmissionRejects)
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	gauge("llhj_health", "1 while no degradation flag is set, else 0.", b2i(snap.Health.Ok()))
	gauge("llhj_health_flag", "Individual degradation flags (1 = raised).", b2i(snap.Health.WALFailed), [2]string{"flag", "wal_failed"})
	gauge("llhj_health_flag", "", b2i(snap.Health.Overloaded), [2]string{"flag", "overloaded"})
	gauge("llhj_health_flag", "", b2i(snap.Health.FloorStalled), [2]string{"flag", "floor_stalled"})
	if ring != nil {
		counter("llhj_trace_events_total", "Control-plane trace events emitted.", ring.Next())
	}
	if hist != nil {
		d.Hists = append(d.Hists, latencyHist(hist))
	}
	return d
}

// wrapLatency interposes the output-latency histogram on the serving
// path: each result's end-to-end latency — admission wall time of the
// later input tuple to now — is recorded before the user callback
// runs. Punctuations pass through unrecorded.
func wrapLatency[L, RT any](h *metrics.AtomicHistogram, now func() int64, out func(Item[L, RT])) func(Item[L, RT]) {
	return func(it Item[L, RT]) {
		if !it.Punct {
			w := it.Result.Pair.R.Wall
			if s := it.Result.Pair.S.Wall; s > w {
				w = s
			}
			h.Add(now() - w)
		}
		out(it)
	}
}
